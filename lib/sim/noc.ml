(* Write-only network-on-chip (Fig. 7): a core may post writes into another
   tile's local memory, but can never read a remote memory.  Writes are
   posted — the sender only pays the injection cost; the data lands in the
   destination memory after the link latency, delivered by an engine event.

   Per (source, destination) pair delivery is FIFO, like the connectionless
   NoC of the paper's platform [16].  [post_write_at] bypasses the FIFO and
   lets the caller pick the arrival time; it models the Fig. 1 architecture
   where two memories sit behind paths of different latency, and is what
   the broken-flag demonstration uses. *)

type t = {
  cfg : Config.t;
  engine : Engine.t;
  locals : Bytes.t array;                  (* per-tile local memories *)
  outstanding : int array;                 (* in-flight writes per source *)
  last_arrival : int array;                (* latest arrival time per source *)
  link_last : int array array;             (* per (src, dst) FIFO ordering *)
  mutable total_writes : int;
}

let create (cfg : Config.t) (engine : Engine.t) (locals : Bytes.t array) =
  {
    cfg;
    engine;
    locals;
    outstanding = Array.make cfg.cores 0;
    last_arrival = Array.make cfg.cores 0;
    link_last = Array.make_matrix cfg.cores cfg.cores 0;
    total_writes = 0;
  }

let deliver t ~src ~dst ~off (data : Bytes.t) () =
  Bytes.blit data 0 t.locals.(dst) off (Bytes.length data);
  t.outstanding.(src) <- t.outstanding.(src) - 1

(* Post [data] to offset [off] of tile [dst]'s local memory.  Returns the
   arrival time.  The caller charges the injection cost. *)
let post_write t ~src ~dst ~off (data : Bytes.t) : int =
  if src = dst then invalid_arg "Noc.post_write: src = dst";
  let now = Engine.now t.engine in
  let words = (Bytes.length data + 3) / 4 in
  let latency = Config.noc_latency t.cfg ~src ~dst ~words in
  (* FIFO per link: never deliver before an earlier write on this link *)
  let arrival = max (now + latency) (t.link_last.(src).(dst) + 1) in
  t.link_last.(src).(dst) <- arrival;
  t.outstanding.(src) <- t.outstanding.(src) + 1;
  t.last_arrival.(src) <- max t.last_arrival.(src) arrival;
  t.total_writes <- t.total_writes + 1;
  Probe.emit (Engine.probe t.engine) ~time:now
    (Probe.Noc_post { src; dst; off; bytes = Bytes.length data; arrival });
  Engine.at t.engine ~time:arrival
    (deliver t ~src ~dst ~off (Bytes.copy data));
  arrival

(* Multicast burst: one injection delivers the same payload to several
   tiles.  The sender frames a single burst (one header flit plus the
   payload, counted by the caller) and the ring circulates it; every
   destination still receives its copy after its own link latency and the
   per-link FIFO is preserved, so delivery semantics are identical to a
   sequence of unicast posts — only the injection side is cheaper.
   Returns the latest arrival time. *)
let post_multicast t ~src ~dsts ~off (data : Bytes.t) : int =
  let now = Engine.now t.engine in
  let words = (Bytes.length data + 3) / 4 in
  let last = ref now in
  List.iter
    (fun dst ->
      if dst = src then invalid_arg "Noc.post_multicast: src in dsts";
      let latency = Config.noc_latency t.cfg ~src ~dst ~words in
      let arrival = max (now + latency) (t.link_last.(src).(dst) + 1) in
      t.link_last.(src).(dst) <- arrival;
      t.outstanding.(src) <- t.outstanding.(src) + 1;
      t.last_arrival.(src) <- max t.last_arrival.(src) arrival;
      t.total_writes <- t.total_writes + 1;
      Probe.emit (Engine.probe t.engine) ~time:now
        (Probe.Noc_post { src; dst; off; bytes = Bytes.length data; arrival });
      Engine.at t.engine ~time:arrival
        (deliver t ~src ~dst ~off (Bytes.copy data));
      last := max !last arrival)
    dsts;
  !last

(* Unordered variant with caller-chosen latency (Fig. 1 machine). *)
let post_write_at t ~src ~dst ~off ~latency (data : Bytes.t) : int =
  let now = Engine.now t.engine in
  let arrival = now + latency in
  t.outstanding.(src) <- t.outstanding.(src) + 1;
  t.last_arrival.(src) <- max t.last_arrival.(src) arrival;
  t.total_writes <- t.total_writes + 1;
  Probe.emit (Engine.probe t.engine) ~time:now
    (Probe.Noc_post { src; dst; off; bytes = Bytes.length data; arrival });
  Engine.at t.engine ~time:arrival
    (deliver t ~src ~dst ~off (Bytes.copy data));
  arrival

let injection_cost t (data : Bytes.t) =
  let words = (Bytes.length data + 3) / 4 in
  t.cfg.Config.noc_word_cycles * words

(* Cycles the source must wait for all of its posted writes to land. *)
let drain_wait t ~src =
  if t.outstanding.(src) = 0 then 0
  else max 0 (t.last_arrival.(src) - Engine.now t.engine)

let outstanding t ~src = t.outstanding.(src)
