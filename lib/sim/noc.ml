(* Write-only network-on-chip (Fig. 7): a core may post writes into another
   tile's local memory, but can never read a remote memory.  Writes are
   posted — the sender only pays the injection cost; the data lands in the
   destination memory after the link latency, delivered by an engine event.

   Per (source, destination) pair delivery is FIFO, like the connectionless
   NoC of the paper's platform [16].  [post_write_at] bypasses the FIFO and
   lets the caller pick the arrival time; it models the Fig. 1 architecture
   where two memories sit behind paths of different latency, and is what
   the broken-flag demonstration uses.

   Fault-free fast path.  A posted write stages its payload into a pooled
   [Mem.t] buffer held by an integer-indexed delivery arena and schedules
   a single preallocated closure via [Engine.at_indexed], so the
   steady-state post/deliver cycle allocates nothing: no payload copies
   on the OCaml heap, no per-delivery closure.  Buffers stay attached to
   their arena slot and are reused; one grows (once) if a later payload
   needs more room.

   Resilient transport (the chaos plane).  When the fault plane is armed,
   every posted write becomes a sequenced, checksummed packet on its
   (src, dst) link and delivery runs through a per-link worker:

     - each link serves its packet queue strictly in order, so FIFO
       delivery survives retransmission — a retried packet can never be
       overtaken by a later write on the same link, which the DSM's
       narrow flushes depend on;
     - a dropped attempt is detected by the sender after an ack timeout
       and retransmitted under capped exponential backoff; a corrupted
       attempt is caught by the packet checksum at the receiver and
       retransmitted the same way, so corruption never lands silently;
     - a transiently delayed attempt just lands late;
     - after [noc_retry_limit] failed retransmissions the link is
       declared dead and every packet for it — queued and future — is
       staged through the shared SDRAM instead (the relay path,
       [Config.relay_latency]); data still always arrives, only slower.

   When the fault plane is disarmed every post takes the plain path below,
   bit-identical to the transport without the plane. *)

(* One posted write on the resilient path. *)
type packet = {
  seq : int;               (* per-link sequence number *)
  off : int;               (* destination local-memory offset *)
  data : Bytes.t;
  csum : int;              (* Fault.checksum of [data] *)
  nominal : int;           (* fault-free arrival time *)
  mutable attempts : int;  (* transmissions so far (1 = original) *)
}

type link = {
  q : packet Queue.t;      (* head is in service *)
  mutable busy : bool;     (* a worker event is scheduled for this link *)
  mutable dead : bool;     (* retry budget exhausted; relay path only *)
  mutable next_seq : int;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  fault : Fault.t;
  locals : Mem.t array;                    (* per-tile local memories *)
  outstanding : int array;                 (* in-flight writes per source *)
  last_arrival : int array;                (* latest arrival time per source *)
  link_last : int array array;             (* per (src, dst) FIFO ordering *)
  links : link array array;                (* resilient path, per (src, dst);
                                              allocated only when the fault
                                              plane is armed (cores² records
                                              are real memory at 1024 tiles) *)
  contended : bool;                        (* non-star fabric: route messages
                                              over physical links and account
                                              per-link contention *)
  link_busy : int array;                   (* busy-until horizon per directed
                                              physical link (empty on Star) *)
  mutable total_writes : int;
  (* fault-free delivery arena: pooled payload buffers + parallel fields,
     dispatched by one preallocated closure via [Engine.at_indexed] *)
  mutable d_buf : Mem.t array;
  mutable d_src : int array;
  mutable d_dst : int array;
  mutable d_off : int array;
  mutable d_len : int array;
  mutable d_next : int array;              (* free list *)
  mutable d_free : int;
  mutable deliver_fn : int -> unit;
}

let no_buf : Mem.t = Bigarray.Array1.create Bigarray.Char Bigarray.C_layout 0

let initial_deliveries = 64

let create (cfg : Config.t) (fault : Fault.t) (engine : Engine.t)
    (locals : Mem.t array) =
  let d_next = Array.init initial_deliveries (fun i -> i + 1) in
  d_next.(initial_deliveries - 1) <- -1;
  let t =
    {
      cfg;
      engine;
      fault;
      locals;
      outstanding = Array.make cfg.cores 0;
      last_arrival = Array.make cfg.cores 0;
      link_last = Array.make_matrix cfg.cores cfg.cores 0;
      links =
        (* fault-free runs never touch the resilient path, so a scale
           machine skips allocating cores² queue records *)
        (if Fault.enabled fault then
           Array.init cfg.cores (fun _ ->
               Array.init cfg.cores (fun _ ->
                   { q = Queue.create (); busy = false; dead = false;
                     next_seq = 0 }))
         else [||]);
      contended = cfg.topology <> Topology.Star;
      link_busy = Array.make (Topology.link_count cfg.topology) 0;
      total_writes = 0;
      d_buf = Array.make initial_deliveries no_buf;
      d_src = Array.make initial_deliveries 0;
      d_dst = Array.make initial_deliveries 0;
      d_off = Array.make initial_deliveries 0;
      d_len = Array.make initial_deliveries 0;
      d_next;
      d_free = 0;
      deliver_fn = (fun _ -> ());
    }
  in
  t.deliver_fn <-
    (fun i ->
      Mem.blit t.d_buf.(i) 0 t.locals.(t.d_dst.(i)) t.d_off.(i) t.d_len.(i);
      t.outstanding.(t.d_src.(i)) <- t.outstanding.(t.d_src.(i)) - 1;
      t.d_next.(i) <- t.d_free;
      t.d_free <- i);
  t

let grow_deliveries t =
  let n = Array.length t.d_buf in
  let n' = 2 * n in
  let copy dummy a =
    let a' = Array.make n' dummy in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.d_buf <- copy no_buf t.d_buf;
  t.d_src <- copy 0 t.d_src;
  t.d_dst <- copy 0 t.d_dst;
  t.d_off <- copy 0 t.d_off;
  t.d_len <- copy 0 t.d_len;
  let nx = Array.make n' (-1) in
  Array.blit t.d_next 0 nx 0 n;
  for i = n to n' - 2 do
    nx.(i) <- i + 1
  done;
  t.d_next <- nx;
  t.d_free <- n

(* Round buffer capacity up so a slot settles quickly instead of
   reallocating for every distinct payload size it sees. *)
let rec round_cap c len = if c >= len then c else round_cap (2 * c) len

let alloc_delivery t ~src ~dst ~off ~len =
  if t.d_free = -1 then grow_deliveries t;
  let i = t.d_free in
  t.d_free <- t.d_next.(i);
  if Mem.length t.d_buf.(i) < len then
    t.d_buf.(i) <- Mem.create (round_cap 8 len);
  t.d_src.(i) <- src;
  t.d_dst.(i) <- dst;
  t.d_off.(i) <- off;
  t.d_len.(i) <- len;
  i

let emit_fault t ~time f =
  Probe.emit (Engine.probe t.engine) ~time (Probe.Fault f)

(* Arrival time of a posted write injected at [now], honouring both the
   per-(src, dst) FIFO and — on routed fabrics — per-physical-link
   contention.

   Star keeps the seed model verbatim: flat [Config.noc_latency] bounded
   below by the link FIFO.  On mesh/torus/hier fabrics the message is
   walked store-and-forward over its route: at each directed link it
   waits for the link's busy-until horizon, occupies the link for the
   payload's serialization time and pays the hop latency — so latency
   reflects path length, and two messages crossing the same link contend
   even when their (src, dst) pairs differ.  The caller stores the
   result into [link_last.(src).(dst)]. *)
let route_arrival t ~now ~src ~dst ~words =
  if not t.contended then
    let latency = Config.noc_latency t.cfg ~src ~dst ~words in
    max (now + latency) (t.link_last.(src).(dst) + 1)
  else begin
    let cfg = t.cfg in
    let occupy = cfg.Config.noc_word_cycles * words in
    let tm = ref (now + cfg.Config.noc_base_cycles) in
    Topology.iter_route cfg.Config.topology ~cores:cfg.Config.cores ~src ~dst
      (fun link ->
        let depart = max !tm t.link_busy.(link) in
        t.link_busy.(link) <- depart + occupy;
        tm := depart + cfg.Config.noc_hop_cycles + occupy);
    max !tm (t.link_last.(src).(dst) + 1)
  end

(* ---------------- resilient per-link delivery ---------------- *)

(* The engine gives event closures no ambient clock, so every worker step
   carries its own scheduled [time]. *)

(* Deliver the head packet's payload at [time], then serve the next. *)
let rec complete t ~src ~dst link ~time () =
  let p = Queue.pop link.q in
  assert (Fault.checksum p.data = p.csum);
  Mem.blit_of_bytes p.data 0 t.locals.(dst) p.off (Bytes.length p.data);
  t.outstanding.(src) <- t.outstanding.(src) - 1;
  next t ~src ~dst link ~time

(* Arm the worker for the new head packet, if any: not before the packet's
   nominal arrival, and strictly after the previous delivery. *)
and next t ~src ~dst link ~time =
  match Queue.peek_opt link.q with
  | None -> link.busy <- false
  | Some p ->
      let at = max (time + 1) p.nominal in
      t.last_arrival.(src) <- max t.last_arrival.(src) at;
      Engine.at t.engine ~time:at (service t ~src ~dst link ~time:at)

(* One worker step: attempt (or relay) delivery of the head packet. *)
and service t ~src ~dst link ~time () =
  match Queue.peek_opt link.q with
  | None -> link.busy <- false
  | Some p ->
      if link.dead then begin
        (* Degraded path: stage the payload through the shared SDRAM
           instead of the dead link.  Serialized like the link itself so
           ordering is preserved. *)
        let words = (Bytes.length p.data + 3) / 4 in
        let at = time + Config.relay_latency t.cfg ~words in
        let counts = Fault.counts t.fault in
        counts.Fault.relay_deliveries <- counts.Fault.relay_deliveries + 1;
        emit_fault t ~time (Probe.F_noc_degraded { src; dst; seq = p.seq });
        t.last_arrival.(src) <- max t.last_arrival.(src) at;
        Engine.at t.engine ~time:at (complete t ~src ~dst link ~time:at)
      end
      else begin
        p.attempts <- p.attempts + 1;
        match
          Fault.route_outcome t.fault ~src ~dst ~seq:p.seq ~attempt:p.attempts
        with
        | Fault.Deliver -> complete t ~src ~dst link ~time ()
        | Fault.Delay d ->
            emit_fault t ~time
              (Probe.F_noc_delay { src; dst; seq = p.seq; cycles = d });
            let at = time + d in
            t.last_arrival.(src) <- max t.last_arrival.(src) at;
            Engine.at t.engine ~time:at (complete t ~src ~dst link ~time:at)
        | (Fault.Drop | Fault.Corrupt) as failure ->
            emit_fault t ~time
              (match failure with
              | Fault.Drop ->
                  Probe.F_noc_drop { src; dst; seq = p.seq; attempt = p.attempts }
              | _ ->
                  Probe.F_noc_corrupt
                    { src; dst; seq = p.seq; attempt = p.attempts });
            if p.attempts > t.cfg.Config.noc_retry_limit then begin
              (* Retry budget exhausted: the link is dead from here on;
                 this and all queued packets degrade to the relay. *)
              link.dead <- true;
              let counts = Fault.counts t.fault in
              counts.Fault.links_dead <- counts.Fault.links_dead + 1;
              emit_fault t ~time (Probe.F_link_dead { src; dst });
              service t ~src ~dst link ~time ()
            end
            else begin
              (* Loss detected after the ack turnaround; retransmit under
                 capped exponential backoff. *)
              let base = t.cfg.Config.noc_retry_backoff in
              let backoff =
                min (base lsl (p.attempts - 1)) (base * 64)
              in
              let at = time + t.cfg.Config.noc_ack_cycles + backoff in
              let counts = Fault.counts t.fault in
              counts.Fault.noc_retries <- counts.Fault.noc_retries + 1;
              emit_fault t ~time
                (Probe.F_noc_retry
                   { src; dst; seq = p.seq; attempt = p.attempts; at });
              t.last_arrival.(src) <- max t.last_arrival.(src) at;
              Engine.at t.engine ~time:at (service t ~src ~dst link ~time:at)
            end
      end

(* Enqueue one packet on the resilient path.  Returns the nominal
   (fault-free) arrival time; the actual landing may be later. *)
let post_resilient t ~now ~src ~dst ~off (mem : Mem.t) ~pos ~len : int =
  let words = (len + 3) / 4 in
  let nominal = route_arrival t ~now ~src ~dst ~words in
  t.link_last.(src).(dst) <- nominal;
  let link = t.links.(src).(dst) in
  let data = Mem.to_bytes mem ~pos ~len in
  let p =
    {
      seq = link.next_seq;
      off;
      data;
      csum = Fault.checksum data;
      nominal;
      attempts = 0;
    }
  in
  link.next_seq <- link.next_seq + 1;
  Queue.push p link.q;
  t.outstanding.(src) <- t.outstanding.(src) + 1;
  t.last_arrival.(src) <- max t.last_arrival.(src) nominal;
  t.total_writes <- t.total_writes + 1;
  if Probe.active (Engine.probe t.engine) then
    Probe.emit (Engine.probe t.engine) ~time:now
      (Probe.Noc_post { src; dst; off; bytes = len; arrival = nominal });
  if not link.busy then begin
    link.busy <- true;
    Engine.at t.engine ~time:nominal (service t ~src ~dst link ~time:nominal)
  end;
  nominal

(* ---------------- public posting interface ---------------- *)

(* Book-keep one fault-free posted write landing at [arrival] and stage
   its payload in the delivery arena. *)
let post_plain t ~now ~src ~dst ~off ~arrival (mem : Mem.t) ~pos ~len =
  t.outstanding.(src) <- t.outstanding.(src) + 1;
  t.last_arrival.(src) <- max t.last_arrival.(src) arrival;
  t.total_writes <- t.total_writes + 1;
  if Probe.active (Engine.probe t.engine) then
    Probe.emit (Engine.probe t.engine) ~time:now
      (Probe.Noc_post { src; dst; off; bytes = len; arrival });
  let i = alloc_delivery t ~src ~dst ~off ~len in
  Mem.blit mem pos t.d_buf.(i) 0 len;
  Engine.at_indexed t.engine ~time:arrival t.deliver_fn i

(* Post [len] bytes of [mem] at [pos] to offset [off] of tile [dst]'s
   local memory.  Returns the arrival time.  The caller charges the
   injection cost. *)
let post_write t ~src ~dst ~off (mem : Mem.t) ~pos ~len : int =
  if src = dst then invalid_arg "Noc.post_write: src = dst";
  let now = Engine.now t.engine in
  if Fault.enabled t.fault then
    post_resilient t ~now ~src ~dst ~off mem ~pos ~len
  else begin
    let words = (len + 3) / 4 in
    (* FIFO per link: never deliver before an earlier write on this link *)
    let arrival = route_arrival t ~now ~src ~dst ~words in
    t.link_last.(src).(dst) <- arrival;
    post_plain t ~now ~src ~dst ~off ~arrival mem ~pos ~len;
    arrival
  end

(* Multicast burst: one injection delivers the same payload to several
   tiles.  The sender frames a single burst (one header flit plus the
   payload, counted by the caller) and the ring circulates it; every
   destination still receives its copy after its own link latency and the
   per-link FIFO is preserved, so delivery semantics are identical to a
   sequence of unicast posts — only the injection side is cheaper.
   Under faults each destination's copy fails and retries independently.
   Returns the latest nominal arrival time. *)
let post_multicast t ~src ~dsts ~off (mem : Mem.t) ~pos ~len : int =
  let now = Engine.now t.engine in
  let words = (len + 3) / 4 in
  let last = ref now in
  let faulty = Fault.enabled t.fault in
  List.iter
    (fun dst ->
      if dst = src then invalid_arg "Noc.post_multicast: src in dsts";
      let arrival =
        if faulty then post_resilient t ~now ~src ~dst ~off mem ~pos ~len
        else begin
          let arrival = route_arrival t ~now ~src ~dst ~words in
          t.link_last.(src).(dst) <- arrival;
          post_plain t ~now ~src ~dst ~off ~arrival mem ~pos ~len;
          arrival
        end
      in
      last := max !last arrival)
    dsts;
  !last

(* Unordered variant with caller-chosen latency (Fig. 1 machine).  This
   models a raw memory path, not the sequenced link protocol, so the
   fault plane does not apply to it. *)
let post_write_at t ~src ~dst ~off ~latency (mem : Mem.t) ~pos ~len : int =
  let now = Engine.now t.engine in
  let arrival = now + latency in
  post_plain t ~now ~src ~dst ~off ~arrival mem ~pos ~len;
  arrival

let injection_cost t ~len =
  let words = (len + 3) / 4 in
  t.cfg.Config.noc_word_cycles * words

(* Cycles the source must wait for all of its posted writes to land.

   [last_arrival] is extended every time a retransmission or relay
   delivery is scheduled, so under faults this covers retries currently
   in flight — but a retry scheduled *after* this call (a failure drawn
   at a future attempt) can extend it again.  A full drain therefore
   re-checks [outstanding] after waiting (see [Machine.noc_drain]); the
   wait returned here is exact only when the fault plane is off. *)
let drain_wait t ~src =
  if t.outstanding.(src) = 0 then 0
  else max 0 (t.last_arrival.(src) - Engine.now t.engine)

(* In-flight posted writes of [src], counting packets queued for
   retransmission and relay deliveries — a packet stays outstanding until
   its payload actually lands in the destination memory. *)
let outstanding t ~src = t.outstanding.(src)

let link_dead t ~src ~dst =
  Fault.enabled t.fault && t.links.(src).(dst).dead

let fault t = t.fault
