#!/usr/bin/env bash
# Check relative markdown links in the repo's documentation.
#
# Scans README.md and docs/*.md for [text](target) links and verifies
# that every relative target (optionally with a #fragment) exists on
# disk.  External links (http/https/mailto) are skipped — CI must not
# depend on network reachability.  Exits non-zero listing every broken
# link.
#
# Usage: scripts/check_links.sh [file-or-dir ...]   (default: README.md docs)

set -u
cd "$(dirname "$0")/.."

targets=("$@")
[ ${#targets[@]} -eq 0 ] && targets=(README.md docs)

files=()
for t in "${targets[@]}"; do
  if [ -d "$t" ]; then
    while IFS= read -r f; do files+=("$f"); done \
      < <(find "$t" -name '*.md' | sort)
  else
    files+=("$t")
  fi
done

bad=0
for f in "${files[@]}"; do
  # one link per line: "[text](target)" -> "target"
  while IFS= read -r link; do
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${link%%#*}"
    # pure-fragment links (#section) refer to the file itself
    [ -z "$path" ] && path="$f"
    # relative links resolve against the linking file's directory
    case "$path" in
      /*) resolved="$path" ;;
      *)  resolved="$(dirname "$f")/$path" ;;
    esac
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $f -> $link"
      bad=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*(\(.*\))/\1/')
done

if [ "$bad" -ne 0 ]; then
  echo "check_links: broken links found"
  exit 1
fi
echo "check_links: all relative links resolve (${#files[@]} files)"
