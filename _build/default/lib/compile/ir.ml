(* A small IR for annotated programs, used by the static discipline checker
   (Check) and the annotation-lowering pass (Lower).  This is the
   "tooling" side of the PMC approach: with the annotations in the source,
   a compiler has "all information about the essential ordering of the
   application" and can verify it and map it to the platform at hand. *)

type obj = { oname : string; obytes : int }

let obj ~name ~bytes = { oname = name; obytes = bytes }

type stmt =
  | Entry_x of obj
  | Exit_x of obj
  | Entry_ro of obj
  | Exit_ro of obj
  | Fence
  | Flush of obj
  | Read of obj
  | Write of obj
  | Compute of int            (* n instructions of local work *)
  | Loop of int * stmt list   (* fixed trip count *)

type thread = stmt list

type program = { pname : string; threads : thread list }

let rec iter_stmts f (stmts : stmt list) =
  List.iter
    (fun s ->
      f s;
      match s with Loop (_, body) -> iter_stmts f body | _ -> ())
    stmts

let objects (p : program) : obj list =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun th ->
      iter_stmts
        (fun s ->
          let note o =
            if not (Hashtbl.mem seen o.oname) then begin
              Hashtbl.add seen o.oname ();
              acc := o :: !acc
            end
          in
          match s with
          | Entry_x o | Exit_x o | Entry_ro o | Exit_ro o | Flush o
          | Read o | Write o ->
              note o
          | Fence | Compute _ | Loop _ -> ())
        th)
    p.threads;
  List.rev !acc

let stmt_to_string = function
  | Entry_x o -> Printf.sprintf "entry_x(%s)" o.oname
  | Exit_x o -> Printf.sprintf "exit_x(%s)" o.oname
  | Entry_ro o -> Printf.sprintf "entry_ro(%s)" o.oname
  | Exit_ro o -> Printf.sprintf "exit_ro(%s)" o.oname
  | Fence -> "fence()"
  | Flush o -> Printf.sprintf "flush(%s)" o.oname
  | Read o -> Printf.sprintf "read %s" o.oname
  | Write o -> Printf.sprintf "write %s" o.oname
  | Compute n -> Printf.sprintf "compute %d" n
  | Loop (n, _) -> Printf.sprintf "loop %d" n

(* The annotated message-passing program of Fig. 6, as IR. *)
let fig6 =
  let x = obj ~name:"X" ~bytes:4 in
  let f = obj ~name:"f" ~bytes:4 in
  {
    pname = "fig6";
    threads =
      [
        [
          Entry_x x; Write x; Fence; Exit_x x;
          Entry_x f; Write f; Flush f; Exit_x f;
        ];
        [
          Loop (1, [ Entry_ro f; Read f; Exit_ro f ]);
          Fence;
          Entry_x x; Read x; Exit_x x;
        ];
      ];
  }

(* Fig. 6 with the fence dropped — the checker warns about it. *)
let fig6_missing_fence =
  let x = obj ~name:"X" ~bytes:4 in
  let f = obj ~name:"f" ~bytes:4 in
  {
    pname = "fig6-missing-fence";
    threads =
      [
        [ Entry_x x; Write x; Exit_x x; Entry_x f; Write f; Flush f; Exit_x f ];
        [
          Loop (1, [ Entry_ro f; Read f; Exit_ro f ]);
          Entry_x x; Read x; Exit_x x;
        ];
      ];
  }
