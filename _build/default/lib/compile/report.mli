(** Human-readable reports from the checker and the lowering pass. *)

val pp_check : Format.formatter -> Ir.program -> Check.report -> unit

val pp_lowering_table : Format.formatter -> Pmc_sim.Config.t -> bytes:int -> unit
(** The Table II view for an object of the given size, with estimated
    cycles per cell. *)

val pp_expansion : Format.formatter -> Lower.expansion -> unit
val pp_program_expansion : Format.formatter -> Pmc_sim.Config.t -> Ir.program -> unit
