(** A small concrete syntax for annotated programs, making {!Check} and
    {!Lower} usable as a standalone tool on files.

    One directive per line, ['#'] comments:
    {v
    program <name>
    obj <name> <bytes>
    thread
      entry_x <obj> | exit_x <obj> | entry_ro <obj> | exit_ro <obj>
      fence | flush <obj> | read <obj> | write <obj> | compute <n>
      loop <n> ... end
    v} *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ir.program, error list) Result.t
val parse_file : string -> (Ir.program, error list) Result.t

val print : Ir.program -> string
(** Inverse of {!parse} (up to formatting): [parse (print p)] yields a
    program equal to [p]. *)
