(* Static discipline checking over the IR: the same rules the run-time
   [Pmc.Api] enforces, verified at "compile time", plus heuristic warnings
   for the ordering mistakes the memory model cannot catch mechanically
   (a publish pattern without the ≺F fence between the two scopes). *)

type error =
  | Unmatched_exit of { thread : int; stmt : Ir.stmt }
  | Non_nested_exit of { thread : int; stmt : Ir.stmt; innermost : string }
  | Write_outside_x of { thread : int; obj : Ir.obj }
  | Read_outside_scope of { thread : int; obj : Ir.obj }
  | Flush_outside_x of { thread : int; obj : Ir.obj }
  | Reentrant_entry of { thread : int; obj : Ir.obj }
  | Write_in_ro of { thread : int; obj : Ir.obj }
  | Unclosed_scope of { thread : int; obj : Ir.obj }

type warning =
  | Publish_without_fence of { thread : int; first : string; second : string }
  | Empty_scope of { thread : int; obj : Ir.obj }

let error_to_string = function
  | Unmatched_exit { thread; stmt } ->
      Printf.sprintf "thread %d: %s without matching entry" thread
        (Ir.stmt_to_string stmt)
  | Non_nested_exit { thread; stmt; innermost } ->
      Printf.sprintf "thread %d: %s while %s is the innermost scope" thread
        (Ir.stmt_to_string stmt) innermost
  | Write_outside_x { thread; obj } ->
      Printf.sprintf "thread %d: write of %s outside entry_x/exit_x" thread
        obj.Ir.oname
  | Read_outside_scope { thread; obj } ->
      Printf.sprintf "thread %d: read of %s outside any entry/exit pair"
        thread obj.Ir.oname
  | Flush_outside_x { thread; obj } ->
      Printf.sprintf "thread %d: flush(%s) outside entry_x/exit_x" thread
        obj.Ir.oname
  | Reentrant_entry { thread; obj } ->
      Printf.sprintf "thread %d: re-entrant entry of %s" thread obj.Ir.oname
  | Write_in_ro { thread; obj } ->
      Printf.sprintf "thread %d: write of %s inside read-only scope" thread
        obj.Ir.oname
  | Unclosed_scope { thread; obj } ->
      Printf.sprintf "thread %d: scope of %s never exited" thread
        obj.Ir.oname

let warning_to_string = function
  | Publish_without_fence { thread; first; second } ->
      Printf.sprintf
        "thread %d: writes to %s and then %s without a fence between the \
         scopes — observers may see them in either order (add fence() for \
         %s-before-%s ordering)"
        thread first second first second
  | Empty_scope { thread; obj } ->
      Printf.sprintf "thread %d: scope of %s performs no accesses" thread
        obj.Ir.oname

type report = { errors : error list; warnings : warning list }

let ok r = r.errors = []

type mode = M_x | M_ro

let check (p : Ir.program) : report =
  let errors = ref [] and warnings = ref [] in
  let err e = errors := e :: !errors in
  let warn w = warnings := w :: !warnings in
  List.iteri
    (fun tid th ->
      (* scope stack: (obj, mode, had_access) *)
      let stack = ref [] in
      (* publish heuristic: the most recent exclusively written object with
         no fence after the write.  A later exclusive write to a *different*
         object is a flag-publish pattern whose ordering is not guaranteed
         without a fence (Fig. 1/Fig. 6). *)
      let last_unfenced_write = ref None in
      let in_scope o = List.exists (fun (o', _, _) -> o'.Ir.oname = o.Ir.oname) !stack in
      let mode_of o =
        List.find_map
          (fun (o', m, _) -> if o'.Ir.oname = o.Ir.oname then Some m else None)
          !stack
      in
      let mark_access o =
        stack :=
          List.map
            (fun (o', m, a) ->
              if o'.Ir.oname = o.Ir.oname then (o', m, true) else (o', m, a))
            !stack
      in
      let rec walk stmts =
        List.iter
          (fun s ->
            match s with
            | Ir.Entry_x o ->
                if in_scope o then err (Reentrant_entry { thread = tid; obj = o })
                else stack := (o, M_x, false) :: !stack
            | Ir.Entry_ro o ->
                if in_scope o then err (Reentrant_entry { thread = tid; obj = o })
                else stack := (o, M_ro, false) :: !stack
            | Ir.Exit_x o | Ir.Exit_ro o -> (
                let want = match s with Ir.Exit_x _ -> M_x | _ -> M_ro in
                match !stack with
                | (o', m, accessed) :: rest
                  when o'.Ir.oname = o.Ir.oname && m = want ->
                    stack := rest;
                    if not accessed then
                      warn (Empty_scope { thread = tid; obj = o })
                | (o', _, _) :: _ ->
                    if in_scope o then
                      err
                        (Non_nested_exit
                           { thread = tid; stmt = s; innermost = o'.Ir.oname })
                    else err (Unmatched_exit { thread = tid; stmt = s })
                | [] -> err (Unmatched_exit { thread = tid; stmt = s }))
            | Ir.Fence -> last_unfenced_write := None
            | Ir.Flush o ->
                if mode_of o <> Some M_x then
                  err (Flush_outside_x { thread = tid; obj = o })
                else mark_access o
            | Ir.Read o ->
                if not (in_scope o) then
                  err (Read_outside_scope { thread = tid; obj = o })
                else mark_access o
            | Ir.Write o -> (
                match mode_of o with
                | Some M_x ->
                    mark_access o;
                    (match !last_unfenced_write with
                    | Some prev when prev <> o.Ir.oname ->
                        warn
                          (Publish_without_fence
                             { thread = tid; first = prev; second = o.Ir.oname })
                    | _ -> ());
                    last_unfenced_write := Some o.Ir.oname
                | Some M_ro -> err (Write_in_ro { thread = tid; obj = o })
                | None -> err (Write_outside_x { thread = tid; obj = o }))
            | Ir.Compute _ -> ()
            | Ir.Loop (_, body) -> walk body)
          stmts
      in
      walk th;
      List.iter
        (fun (o, _, _) -> err (Unclosed_scope { thread = tid; obj = o }))
        !stack)
    p.Ir.threads;
  { errors = List.rev !errors; warnings = List.rev !warnings }
