lib/compile/ir.mli:
