lib/compile/ir.ml: Hashtbl List Printf
