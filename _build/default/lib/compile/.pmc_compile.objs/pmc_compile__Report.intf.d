lib/compile/report.mli: Check Format Ir Lower Pmc_sim
