lib/compile/check.ml: Ir List Printf
