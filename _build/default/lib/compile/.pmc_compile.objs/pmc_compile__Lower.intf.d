lib/compile/lower.mli: Ir Pmc_sim
