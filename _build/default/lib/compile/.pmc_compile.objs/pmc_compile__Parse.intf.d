lib/compile/parse.mli: Format Ir Result
