lib/compile/report.ml: Check Fmt Ir List Lower Pmc_sim String
