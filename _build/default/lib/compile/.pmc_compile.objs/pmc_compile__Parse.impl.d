lib/compile/parse.ml: Buffer Fmt Hashtbl Ir List Printf Result String
