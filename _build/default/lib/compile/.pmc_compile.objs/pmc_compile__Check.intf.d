lib/compile/check.mli: Ir
