lib/compile/lower.ml: Hashtbl Ir List Option Pmc_sim Printf
