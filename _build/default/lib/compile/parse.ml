(* A small concrete syntax for annotated programs, so the checker and the
   lowering pass work as a standalone tool on files rather than only on
   built-in examples.  One directive per line; '#' starts a comment.

     program <name>
     obj <name> <bytes>
     thread
       entry_x <obj> | exit_x <obj> | entry_ro <obj> | exit_ro <obj>
       fence | flush <obj>
       read <obj> | write <obj>
       compute <n>
       loop <n>
         ...
       end

   [parse] returns the IR program or a list of located syntax errors;
   [print] renders a program back (parse ∘ print = id, tested). *)

type error = { line : int; message : string }

let pp_error ppf { line; message } =
  Fmt.pf ppf "line %d: %s" line message

type token = { lnum : int; words : string list }

let tokenize (text : string) : token list =
  let lines = String.split_on_char '\n' text in
  List.filteri (fun _ _ -> true) lines
  |> List.mapi (fun i line ->
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         {
           lnum = i + 1;
           words =
             String.split_on_char ' ' (String.trim line)
             |> List.concat_map (String.split_on_char '\t')
             |> List.filter (fun w -> w <> "");
         })
  |> List.filter (fun t -> t.words <> [])

exception Syntax of error

let fail lnum fmt =
  Fmt.kstr (fun message -> raise (Syntax { line = lnum; message })) fmt

let parse (text : string) : (Ir.program, error list) Result.t =
  try
    let tokens = tokenize text in
    let objects : (string, Ir.obj) Hashtbl.t = Hashtbl.create 8 in
    let name = ref "unnamed" in
    let threads = ref [] in
    let obj_of lnum oname =
      match Hashtbl.find_opt objects oname with
      | Some o -> o
      | None -> fail lnum "unknown object %S (declare it with 'obj')" oname
    in
    let int_of lnum s =
      match int_of_string_opt s with
      | Some n -> n
      | None -> fail lnum "expected a number, got %S" s
    in
    (* parse a statement list until a terminator ('end' for loops, 'thread'
       or end-of-file for threads) *)
    let rec stmts acc ~in_loop = function
      | [] ->
          if in_loop then fail 0 "missing 'end' for loop"
          else (List.rev acc, [])
      | ({ lnum; words } as tok) :: rest -> (
          match words with
          | [ "end" ] ->
              if in_loop then (List.rev acc, rest)
              else fail lnum "'end' outside a loop"
          | [ "thread" ] when not in_loop -> (List.rev acc, tok :: rest)
          | [ "entry_x"; o ] ->
              stmts (Ir.Entry_x (obj_of lnum o) :: acc) ~in_loop rest
          | [ "exit_x"; o ] ->
              stmts (Ir.Exit_x (obj_of lnum o) :: acc) ~in_loop rest
          | [ "entry_ro"; o ] ->
              stmts (Ir.Entry_ro (obj_of lnum o) :: acc) ~in_loop rest
          | [ "exit_ro"; o ] ->
              stmts (Ir.Exit_ro (obj_of lnum o) :: acc) ~in_loop rest
          | [ "fence" ] -> stmts (Ir.Fence :: acc) ~in_loop rest
          | [ "flush"; o ] ->
              stmts (Ir.Flush (obj_of lnum o) :: acc) ~in_loop rest
          | [ "read"; o ] ->
              stmts (Ir.Read (obj_of lnum o) :: acc) ~in_loop rest
          | [ "write"; o ] ->
              stmts (Ir.Write (obj_of lnum o) :: acc) ~in_loop rest
          | [ "compute"; n ] ->
              stmts (Ir.Compute (int_of lnum n) :: acc) ~in_loop rest
          | [ "loop"; n ] ->
              let body, rest' = stmts [] ~in_loop:true rest in
              stmts (Ir.Loop (int_of lnum n, body) :: acc) ~in_loop rest'
          | w :: _ -> fail lnum "unknown or malformed directive %S" w
          | [] -> assert false)
    in
    let rec top = function
      | [] -> ()
      | { lnum; words } :: rest -> (
          match words with
          | [ "program"; n ] ->
              name := n;
              top rest
          | [ "obj"; oname; bytes ] ->
              if Hashtbl.mem objects oname then
                fail lnum "object %S declared twice" oname;
              Hashtbl.add objects oname
                (Ir.obj ~name:oname ~bytes:(int_of lnum bytes));
              top rest
          | [ "thread" ] ->
              let body, rest' = stmts [] ~in_loop:false rest in
              threads := body :: !threads;
              top rest'
          | w :: _ -> fail lnum "unknown directive %S at top level" w
          | [] -> assert false)
    in
    top tokens;
    Ok { Ir.pname = !name; threads = List.rev !threads }
  with Syntax e -> Error [ e ]

let parse_file path : (Ir.program, error list) Result.t =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print (p : Ir.program) : string =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "program %s\n" p.Ir.pname;
  List.iter
    (fun (o : Ir.obj) -> add "obj %s %d\n" o.Ir.oname o.Ir.obytes)
    (Ir.objects p);
  let rec stmt indent s =
    let pad = String.make indent ' ' in
    match s with
    | Ir.Entry_x o -> add "%sentry_x %s\n" pad o.Ir.oname
    | Ir.Exit_x o -> add "%sexit_x %s\n" pad o.Ir.oname
    | Ir.Entry_ro o -> add "%sentry_ro %s\n" pad o.Ir.oname
    | Ir.Exit_ro o -> add "%sexit_ro %s\n" pad o.Ir.oname
    | Ir.Fence -> add "%sfence\n" pad
    | Ir.Flush o -> add "%sflush %s\n" pad o.Ir.oname
    | Ir.Read o -> add "%sread %s\n" pad o.Ir.oname
    | Ir.Write o -> add "%swrite %s\n" pad o.Ir.oname
    | Ir.Compute n -> add "%scompute %d\n" pad n
    | Ir.Loop (n, body) ->
        add "%sloop %d\n" pad n;
        List.iter (stmt (indent + 2)) body;
        add "%send\n" pad
  in
  List.iter
    (fun th ->
      add "thread\n";
      List.iter (stmt 2) th)
    p.Ir.threads;
  Buffer.contents buf
