(* Human-readable reports from the checker and the lowering pass. *)

let pp_check ppf (p : Ir.program) (r : Check.report) =
  Fmt.pf ppf "== check %s ==@." p.Ir.pname;
  if Check.ok r then Fmt.pf ppf "  no errors@."
  else
    List.iter
      (fun e -> Fmt.pf ppf "  error: %s@." (Check.error_to_string e))
      r.Check.errors;
  List.iter
    (fun w -> Fmt.pf ppf "  warning: %s@." (Check.warning_to_string w))
    r.Check.warnings

(* The Table II view: how each annotation lowers per architecture for an
   object of [bytes] bytes. *)
let pp_lowering_table ppf (cfg : Pmc_sim.Config.t) ~bytes =
  Fmt.pf ppf
    "== annotation lowering (object of %d bytes, est. cycles in parens) ==@."
    bytes;
  Fmt.pf ppf "%-10s" "";
  List.iter
    (fun a -> Fmt.pf ppf " %-28s" (Lower.arch_name a))
    Lower.archs;
  Fmt.pf ppf "@.";
  List.iter
    (fun ann ->
      Fmt.pf ppf "%-10s" (Lower.annotation_name ann);
      List.iter
        (fun arch ->
          let prims = Lower.lower arch cfg ann ~bytes in
          let cost = Lower.cost arch cfg ann ~bytes in
          let s =
            String.concat "+" (List.map Lower.prim_name prims)
          in
          let s = if String.length s > 22 then String.sub s 0 22 ^ ".." else s in
          Fmt.pf ppf " %-22s(%4d)" s cost)
        Lower.archs;
      Fmt.pf ppf "@.")
    Lower.annotations

let pp_expansion ppf (e : Lower.expansion) =
  Fmt.pf ppf "  %-8s est. annotation overhead %8d cycles;"
    (Lower.arch_name e.Lower.arch) e.Lower.est_cycles;
  List.iter (fun (n, c) -> Fmt.pf ppf " %s x%d;" n c) e.Lower.prims;
  Fmt.pf ppf "@."

let pp_program_expansion ppf cfg (p : Ir.program) =
  Fmt.pf ppf "== lowering %s ==@." p.Ir.pname;
  List.iter
    (fun arch -> pp_expansion ppf (Lower.expand arch cfg p))
    Lower.archs
