(** A small IR for annotated programs — the "tooling" side of the PMC
    approach: with annotations in place, a compiler has "all information
    about the essential ordering of the application" ({!Check} verifies
    the discipline, {!Lower} maps annotations to the platform). *)

type obj = { oname : string; obytes : int }

val obj : name:string -> bytes:int -> obj

type stmt =
  | Entry_x of obj
  | Exit_x of obj
  | Entry_ro of obj
  | Exit_ro of obj
  | Fence
  | Flush of obj
  | Read of obj
  | Write of obj
  | Compute of int            (** local work, in instructions *)
  | Loop of int * stmt list   (** fixed trip count *)

type thread = stmt list
type program = { pname : string; threads : thread list }

val iter_stmts : (stmt -> unit) -> stmt list -> unit
val objects : program -> obj list
val stmt_to_string : stmt -> string

val fig6 : program
(** The annotated message-passing program of Fig. 6. *)

val fig6_missing_fence : program
(** Fig. 6 with the fence dropped — the checker warns about the publish
    pattern. *)
