(** Static discipline checking over the IR: the rules {!Pmc.Api} enforces
    at run time, verified at "compile time", plus heuristic warnings for
    ordering mistakes the model cannot catch mechanically. *)

type error =
  | Unmatched_exit of { thread : int; stmt : Ir.stmt }
  | Non_nested_exit of { thread : int; stmt : Ir.stmt; innermost : string }
  | Write_outside_x of { thread : int; obj : Ir.obj }
  | Read_outside_scope of { thread : int; obj : Ir.obj }
  | Flush_outside_x of { thread : int; obj : Ir.obj }
  | Reentrant_entry of { thread : int; obj : Ir.obj }
  | Write_in_ro of { thread : int; obj : Ir.obj }
  | Unclosed_scope of { thread : int; obj : Ir.obj }

type warning =
  | Publish_without_fence of { thread : int; first : string; second : string }
      (** Exclusive writes to two different objects with no fence between
          them — the Fig. 1 flag pattern without its ≺F ordering. *)
  | Empty_scope of { thread : int; obj : Ir.obj }

val error_to_string : error -> string
val warning_to_string : warning -> string

type report = { errors : error list; warnings : warning list }

val ok : report -> bool
val check : Ir.program -> report
