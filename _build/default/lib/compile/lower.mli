(** Annotation lowering: Table II of the paper encoded as data — for each
    architecture, what every annotation expands into, with estimated
    cycle costs. *)

type arch =
  | Seqcst
  | Nocc
  | Swcc
  | Dsm
  | Spm
  | C11
      (** language-level target on cache-coherent hardware — the
          annotations also lower onto the C11 memory model, per the
          "intersection of all common memory models" claim *)

val archs : arch list
val arch_name : arch -> string

type annotation =
  | A_entry_x
  | A_exit_x
  | A_entry_ro
  | A_exit_ro
  | A_fence
  | A_flush

val annotations : annotation list
val annotation_name : annotation -> string

(** Platform primitives annotations expand into. *)
type prim =
  | P_lock_acquire
  | P_lock_release
  | P_cache_inval of int        (** lines probed *)
  | P_cache_wb_inval of int
  | P_copy_in of int            (** words, background memory → local *)
  | P_copy_out of int
  | P_noc_post of { words : int; dests : int }
  | P_compiler_barrier
  | P_nop
  | P_c11 of string  (** a C11 construct (costs are host-dependent) *)

val prim_name : prim -> string

val lower : arch -> Pmc_sim.Config.t -> annotation -> bytes:int -> prim list
(** One Table II cell: the expansion of [annotation] on [arch] for an
    object of [bytes] bytes. *)

val estimate : Pmc_sim.Config.t -> prim -> int
(** Approximate uncontended cycles (the simulator provides the contended
    truth). *)

val cost : arch -> Pmc_sim.Config.t -> annotation -> bytes:int -> int

type expansion = {
  arch : arch;
  prims : (string * int) list;  (** primitive name → count *)
  est_cycles : int;
}

val expand : arch -> Pmc_sim.Config.t -> Ir.program -> expansion
(** Whole-program expansion: primitive counts and total estimated
    annotation overhead (loops multiplied out). *)
