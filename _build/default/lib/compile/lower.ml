(* Annotation lowering: Table II of the paper, encoded as data.

   For each target architecture, every PMC annotation expands into a
   sequence of platform primitives (lock operations, cache maintenance,
   copies, NoC posts — or nothing at all).  [lower] produces the expansion
   for one annotation and object size; [estimate] attaches the approximate
   cycle cost from the platform configuration, so the trade-offs between
   the architectures can be tabulated before running anything. *)

type arch = Seqcst | Nocc | Swcc | Dsm | Spm | C11

let archs = [ Seqcst; Nocc; Swcc; Dsm; Spm; C11 ]

let arch_name = function
  | Seqcst -> "seqcst"
  | Nocc -> "no-CC"
  | Swcc -> "SWCC"
  | Dsm -> "DSM"
  | Spm -> "SPM"
  | C11 -> "C11"

type annotation =
  | A_entry_x
  | A_exit_x
  | A_entry_ro
  | A_exit_ro
  | A_fence
  | A_flush

let annotations =
  [ A_entry_x; A_exit_x; A_entry_ro; A_exit_ro; A_fence; A_flush ]

let annotation_name = function
  | A_entry_x -> "entry_x"
  | A_exit_x -> "exit_x"
  | A_entry_ro -> "entry_ro"
  | A_exit_ro -> "exit_ro"
  | A_fence -> "fence"
  | A_flush -> "flush"

type prim =
  | P_lock_acquire
  | P_lock_release
  | P_cache_inval of int          (* lines probed *)
  | P_cache_wb_inval of int       (* lines probed, worst case written back *)
  | P_copy_in of int              (* words, background memory -> local *)
  | P_copy_out of int             (* words, local -> background memory *)
  | P_noc_post of { words : int; dests : int }
  | P_compiler_barrier
  | P_nop
  | P_c11 of string  (* a C11 construct on a cache-coherent target *)

let prim_name = function
  | P_lock_acquire -> "lock-acquire"
  | P_lock_release -> "lock-release"
  | P_cache_inval n -> Printf.sprintf "cache-inval(%d lines)" n
  | P_cache_wb_inval n -> Printf.sprintf "cache-wb+inval(%d lines)" n
  | P_copy_in n -> Printf.sprintf "copy-in(%d words)" n
  | P_copy_out n -> Printf.sprintf "copy-out(%d words)" n
  | P_noc_post { words; dests } ->
      Printf.sprintf "noc-post(%d words x %d dests)" words dests
  | P_compiler_barrier -> "compiler-barrier"
  | P_nop -> "nop"
  | P_c11 s -> s

let lines_of (cfg : Pmc_sim.Config.t) bytes =
  (bytes + cfg.line_bytes - 1) / cfg.line_bytes

let words_of bytes = (bytes + 3) / 4

let atomic_sized bytes = bytes <= 4

(* Table II, cell by cell.  [cores] matters only for the DSM flush, which
   replicates to every other tile. *)
let lower arch (cfg : Pmc_sim.Config.t) ann ~bytes : prim list =
  let lines = lines_of cfg bytes and words = words_of bytes in
  match arch, ann with
  (* --- sequentially consistent hardware: only exclusion remains --- *)
  | Seqcst, (A_entry_x) -> [ P_lock_acquire ]
  | Seqcst, A_exit_x -> [ P_lock_release ]
  | Seqcst, A_entry_ro ->
      if atomic_sized bytes then [ P_nop ] else [ P_lock_acquire ]
  | Seqcst, A_exit_ro ->
      if atomic_sized bytes then [ P_nop ] else [ P_lock_release ]
  | Seqcst, A_fence -> [ P_compiler_barrier ]
  | Seqcst, A_flush -> [ P_nop ]
  (* --- uncached shared data: exclusion only, flushes nullified --- *)
  | Nocc, A_entry_x -> [ P_lock_acquire ]
  | Nocc, A_exit_x -> [ P_lock_release ]
  | Nocc, A_entry_ro ->
      if atomic_sized bytes then [ P_nop ] else [ P_lock_acquire ]
  | Nocc, A_exit_ro ->
      if atomic_sized bytes then [ P_nop ] else [ P_lock_release ]
  | Nocc, A_fence -> [ P_compiler_barrier ]
  | Nocc, A_flush -> [ P_nop ]
  (* --- software cache coherency (Table II column 1) --- *)
  | Swcc, A_entry_x -> [ P_lock_acquire; P_cache_inval lines ]
  | Swcc, A_exit_x -> [ P_cache_wb_inval lines; P_lock_release ]
  | Swcc, A_entry_ro ->
      if atomic_sized bytes then [ P_nop ] else [ P_lock_acquire ]
  | Swcc, A_exit_ro ->
      if atomic_sized bytes then [ P_cache_wb_inval lines ]
      else [ P_cache_wb_inval lines; P_lock_release ]
  | Swcc, A_fence -> [ P_compiler_barrier ]
  | Swcc, A_flush -> [ P_cache_wb_inval lines ]
  (* --- distributed shared memory (column 2) --- *)
  | Dsm, A_entry_x -> [ P_lock_acquire; P_copy_in words ]
  | Dsm, A_exit_x -> [ P_lock_release ]  (* lazy release *)
  | Dsm, A_entry_ro ->
      if atomic_sized bytes then [ P_nop ]
      else [ P_lock_acquire; P_copy_in words ]
  | Dsm, A_exit_ro ->
      if atomic_sized bytes then [ P_nop ] else [ P_lock_release ]
  | Dsm, A_fence -> [ P_compiler_barrier ]
  | Dsm, A_flush -> [ P_noc_post { words; dests = cfg.cores - 1 } ]
  (* --- C11 on cache-coherent hardware: PMC annotations map onto the
     language-level model, showing the approach is not tied to the
     paper's three architectures (the model is "an intersection of all
     common memory models").  Hardware coherence makes flush a no-op;
     the mutex carries acquire/release visibility; the fence becomes the
     language fence. --- *)
  | C11, A_entry_x -> [ P_c11 "mtx_lock" ]
  | C11, A_exit_x -> [ P_c11 "mtx_unlock" ]
  | C11, A_entry_ro ->
      if atomic_sized bytes then [ P_c11 "atomic_load_explicit(acquire)" ]
      else [ P_c11 "mtx_lock" ]
  | C11, A_exit_ro ->
      if atomic_sized bytes then [ P_nop ] else [ P_c11 "mtx_unlock" ]
  | C11, A_fence -> [ P_c11 "atomic_thread_fence(seq_cst)" ]
  | C11, A_flush -> [ P_nop ]  (* hardware coherence propagates writes *)
  (* --- scratch-pad memory (column 3) --- *)
  | Spm, A_entry_x -> [ P_lock_acquire; P_copy_in words ]
  | Spm, A_exit_x -> [ P_copy_out words; P_lock_release ]
  | Spm, A_entry_ro ->
      if atomic_sized bytes then [ P_copy_in words ]
      else [ P_lock_acquire; P_copy_in words; P_lock_release ]
  | Spm, A_exit_ro -> [ P_nop ]  (* discard the local copy *)
  | Spm, A_fence -> [ P_compiler_barrier ]
  | Spm, A_flush -> [ P_copy_out words ]

(* Approximate cycle cost of a primitive on the configured platform
   (uncontended; the simulator provides the contended truth). *)
let estimate (cfg : Pmc_sim.Config.t) = function
  | P_lock_acquire -> cfg.lock_local_poll_cycles + cfg.lock_transfer_cycles
  | P_lock_release -> cfg.lock_local_poll_cycles
  | P_cache_inval n -> n
  | P_cache_wb_inval n -> n + (n * cfg.sdram_line_cycles)
  | P_copy_in n | P_copy_out n -> cfg.sdram_word_cycles + (2 * n)
  | P_noc_post { words; dests } -> dests * words * cfg.noc_word_cycles
  | P_compiler_barrier | P_nop -> 0
  | P_c11 _ -> 0  (* host-dependent; not this platform's cycle model *)

let cost arch cfg ann ~bytes =
  List.fold_left (fun acc p -> acc + estimate cfg p) 0
    (lower arch cfg ann ~bytes)

(* Expand a whole program: per architecture, count the primitives inserted
   and the total estimated annotation overhead per full execution. *)
type expansion = {
  arch : arch;
  prims : (string * int) list;     (* primitive name -> count *)
  est_cycles : int;
}

let expand arch cfg (p : Ir.program) : expansion =
  let counts = Hashtbl.create 16 in
  let total = ref 0 in
  let note ann ~bytes ~times =
    List.iter
      (fun prim ->
        let name = prim_name prim in
        Hashtbl.replace counts name
          (times + Option.value ~default:0 (Hashtbl.find_opt counts name));
        total := !total + (times * estimate cfg prim))
      (lower arch cfg ann ~bytes)
  in
  let rec walk mult stmts =
    List.iter
      (fun s ->
        match s with
        | Ir.Entry_x o -> note A_entry_x ~bytes:o.Ir.obytes ~times:mult
        | Ir.Exit_x o -> note A_exit_x ~bytes:o.Ir.obytes ~times:mult
        | Ir.Entry_ro o -> note A_entry_ro ~bytes:o.Ir.obytes ~times:mult
        | Ir.Exit_ro o -> note A_exit_ro ~bytes:o.Ir.obytes ~times:mult
        | Ir.Fence -> note A_fence ~bytes:0 ~times:mult
        | Ir.Flush o -> note A_flush ~bytes:o.Ir.obytes ~times:mult
        | Ir.Read _ | Ir.Write _ | Ir.Compute _ -> ()
        | Ir.Loop (n, body) -> walk (mult * n) body)
      stmts
  in
  List.iter (walk 1) p.Ir.threads;
  {
    arch;
    prims =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []);
    est_cycles = !total;
  }
