(** Three-stage streaming pipeline over the Fig. 9 broadcast FIFO — the
    distributed-memory use case of Section VI-B.  On the DSM back-end all
    pointer polling stays in local memories. *)

val elem_words : int
val fifo_depth : int
val app : Runner.app
