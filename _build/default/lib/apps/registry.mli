(** All applications by name, for the CLI and the benches. *)

val all : Runner.app list
val find : string -> Runner.app option
val names : string list
