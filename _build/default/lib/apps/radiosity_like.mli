(** RADIOSITY-like kernel (Fig. 8): chaotic read-write sharing over an
    irregular task graph — the workload that profits least from software
    cache coherency.  Updates are commutative, so the checksum is
    schedule-independent. *)

val patches : int
val patch_words : int
val app : Runner.app
