(** VOLREND-like kernel (Fig. 8): read-only voxel volume plus a hot
    octree, more compute per shared read than RAYTRACE, working set near
    the L1 capacity. *)

val octree_nodes : int
val bricks : int
val brick_words : int
val app : Runner.app
