lib/apps/streaming.mli: Runner
