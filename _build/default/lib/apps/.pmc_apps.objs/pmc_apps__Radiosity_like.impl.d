lib/apps/radiosity_like.ml: Array Config Int32 Int64 Machine Pmc Pmc_sim Printf Prng Runner
