lib/apps/runner.ml: Config Engine Fmt Int64 Machine Pmc Pmc_sim Printf Stats
