lib/apps/radiosity_like.mli: Runner
