lib/apps/kernels.mli: Runner
