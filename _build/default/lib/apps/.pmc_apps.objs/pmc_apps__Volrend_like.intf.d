lib/apps/volrend_like.mli: Runner
