lib/apps/stencil.mli: Runner
