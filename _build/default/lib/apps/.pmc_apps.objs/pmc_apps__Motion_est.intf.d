lib/apps/motion_est.mli: Runner
