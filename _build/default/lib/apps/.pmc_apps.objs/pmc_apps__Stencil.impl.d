lib/apps/stencil.ml: Array Config Int32 Int64 Machine Pmc Pmc_sim Printf Runner
