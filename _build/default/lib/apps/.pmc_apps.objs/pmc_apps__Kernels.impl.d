lib/apps/kernels.ml: Array Config Int32 Int64 Machine Pmc Pmc_sim Printf Runner
