lib/apps/registry.ml: Kernels List Motion_est Radiosity_like Raytrace_like Runner Stencil Streaming Volrend_like
