lib/apps/runner.mli: Format Pmc Pmc_sim
