lib/apps/motion_est.ml: Array Config Int32 Int64 Machine Pmc Pmc_sim Printf Runner
