lib/apps/volrend_like.ml: Array Config Int32 Int64 List Machine Pmc Pmc_sim Printf Prng Runner
