lib/apps/streaming.ml: Array Config Int32 Int64 Machine Pmc Pmc_sim Runner
