lib/apps/raytrace_like.mli: Runner
