(** Full-search motion estimation — the SPM case study of Fig. 10 /
    Section VI-C.  The search window is read once per candidate vector,
    so staging it in the scratch-pad (entry_ro on the SPM back-end) beats
    refetching through a narrow-line cache. *)

val block_dim : int
val range : int
val window_dim : int
val window_words : int
val block_words : int
val candidates : int

val true_vector : block:int -> int * int
(** The planted motion vector of a block — full search must find it. *)

val app : Runner.app
