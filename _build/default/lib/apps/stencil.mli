(** Jacobi stencil with halo exchange: per-core grid strips
    (double-buffered shared objects), neighbours read through read-only
    scopes, iterations separated by the annotation-built barrier.
    Bit-identical to the sequential reference on every back-end. *)

val width : int
val rows_per_core : int
val app : Runner.app
