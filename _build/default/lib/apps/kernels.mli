(** Small shared-memory kernels for tests and ablations. *)

(** Lock-partitioned histogram: per-group bins updated under exclusive
    scopes. *)
module Histogram : sig
  val groups : int
  val bins_per_group : int
  val app : Runner.app
end

(** Linear hand-off reduction: a chain of Fig. 6 publishes. *)
module Reduce : sig
  val app : Runner.app
end
