(* Graphviz export of executions — renders the dependency graphs the
   paper draws in Figs. 2-5.  Transitively reduced by default, like the
   figures. *)

let node_label (o : Op.t) =
  match o.Op.kind with
  | Op.Init -> Printf.sprintf "init\\nv%d=%d" o.Op.loc o.Op.value
  | Op.Read -> Printf.sprintf "r p%d\\nv%d=%d" o.Op.proc o.Op.loc o.Op.value
  | Op.Write -> Printf.sprintf "w p%d\\nv%d:=%d" o.Op.proc o.Op.loc o.Op.value
  | Op.Acquire -> Printf.sprintf "acq p%d\\nv%d" o.Op.proc o.Op.loc
  | Op.Release -> Printf.sprintf "rel p%d\\nv%d" o.Op.proc o.Op.loc
  | Op.Fence -> Printf.sprintf "fence p%d" o.Op.proc

let edge_style = function
  | Execution.Local p -> Printf.sprintf "label=\"%d<l\", style=dashed" p
  | Execution.Program -> "label=\"<P\""
  | Execution.Sync -> "label=\"<S\", color=blue"
  | Execution.Fence -> "label=\"<F\", color=red"

let of_execution ?(reduced = true) ?(relation = Order.Full)
    (exec : Execution.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph execution {\n  rankdir=TB;\n";
  (* cluster operations per process, as the figures lay them out *)
  for p = -1 to exec.Execution.procs - 1 do
    let ops =
      List.filter
        (fun (o : Op.t) -> o.Op.proc = p)
        (Execution.ops_list exec)
    in
    if ops <> [] then begin
      if p >= 0 then
        Buffer.add_string buf
          (Printf.sprintf "  subgraph cluster_p%d {\n    label=\"process %d\";\n"
             p p);
      List.iter
        (fun (o : Op.t) ->
          Buffer.add_string buf
            (Printf.sprintf "    n%d [label=\"%s\", shape=box];\n" o.Op.id
               (node_label o)))
        ops;
      if p >= 0 then Buffer.add_string buf "  }\n"
    end
  done;
  let edges =
    if reduced then Order.transitive_reduction relation exec
    else
      List.filter
        (fun (e : Execution.edge) -> Order.edge_visible relation e.Execution.kind)
        (Execution.edges exec)
  in
  List.iter
    (fun ({ src; kind; dst } : Execution.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [%s];\n" src dst (edge_style kind)))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
