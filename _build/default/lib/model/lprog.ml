(* Litmus programs: tiny multi-threaded programs whose *complete* outcome
   sets are enumerated under the operational semantics of each memory model
   (Models).  This is how the paper's claims of Section IV-E are checked
   mechanically: SC ⊆ PC ⊆ CC ⊆ Slow on plain read/write programs, fences
   restore message passing under PMC, etc. *)

type expr = Const of int | Reg of int

type instr =
  | Ld of { loc : int; reg : int }          (* reg := [loc] *)
  | St of { loc : int; v : expr }           (* [loc] := v *)
  | Wait_eq of { loc : int; v : int }       (* spin until [loc] = v *)
  | Acq of int                              (* acquire(loc) *)
  | Rel of int                              (* release(loc) *)
  | Fence
  | Flush of int                            (* PMC flush annotation *)

type thread = instr array

type t = {
  name : string;
  locs : int;
  regs : int;  (* registers per thread *)
  threads : thread array;
}

let make ~name ~locs ~regs threads =
  { name; locs; regs; threads = Array.of_list (List.map Array.of_list threads) }

let n_threads p = Array.length p.threads

(* An outcome is the tuple of every thread's registers at termination. *)
type outcome = int array array

let outcome_to_string (oc : outcome) =
  String.concat " | "
    (Array.to_list
       (Array.map
          (fun regs ->
            String.concat ","
              (Array.to_list (Array.map string_of_int regs)))
          oc))

module Outcome_set = Set.Make (struct
  type t = string

  let compare = String.compare
end)

let eval regs = function Const n -> n | Reg r -> regs.(r)

(* ------------------------------------------------------------------ *)
(* Standard litmus programs                                            *)
(* ------------------------------------------------------------------ *)

(* Message passing, Fig. 1 of the paper: t0 publishes data then sets a
   flag; t1 spins on the flag and reads the data.  loc 0 = X, loc 1 = flag.
   Correct iff the only outcome is r0 = 42. *)
let mp_plain =
  make ~name:"MP (unannotated, Fig. 1)" ~locs:2 ~regs:1
    [
      [ St { loc = 0; v = Const 42 }; St { loc = 1; v = Const 1 } ];
      [ Wait_eq { loc = 1; v = 1 }; Ld { loc = 0; reg = 0 } ];
    ]

(* Message passing with a fence between the two publishes (GPO). *)
let mp_fence =
  make ~name:"MP + fences" ~locs:2 ~regs:1
    [
      [ St { loc = 0; v = Const 42 }; Fence; St { loc = 1; v = Const 1 } ];
      [ Wait_eq { loc = 1; v = 1 }; Fence; Ld { loc = 0; reg = 0 } ];
    ]

(* Fully annotated message passing, Fig. 6 of the paper. *)
let mp_annotated =
  make ~name:"MP annotated (Fig. 6)" ~locs:2 ~regs:1
    [
      [
        Acq 0; St { loc = 0; v = Const 42 }; Fence; Rel 0;
        Acq 1; St { loc = 1; v = Const 1 }; Flush 1; Rel 1;
      ];
      [
        Wait_eq { loc = 1; v = 1 }; Fence;
        Acq 0; Ld { loc = 0; reg = 0 }; Rel 0;
      ];
    ]

(* Fig. 6 with the receiver's fence removed: under EC it still works
   (sync operations stay in program order), but under full PMC the
   acquire of X may be hoisted above the polling loop — the receiver
   then holds X's lock while spinning on the flag the sender can no
   longer publish... the exact hazard the fence at line 11 of Fig. 6
   prevents. *)
let mp_annotated_nofence =
  make ~name:"MP annotated, no recv fence" ~locs:2 ~regs:1
    [
      [
        Acq 0; St { loc = 0; v = Const 42 }; Rel 0;
        Acq 1; St { loc = 1; v = Const 1 }; Flush 1; Rel 1;
      ];
      [
        Wait_eq { loc = 1; v = 1 };
        Acq 0; Ld { loc = 0; reg = 0 }; Rel 0;
      ];
    ]

(* Store buffering: both threads write then read the other's location.
   SC forbids r0 = r1 = 0; every weaker model allows it. *)
let sb =
  make ~name:"SB (store buffering)" ~locs:2 ~regs:1
    [
      [ St { loc = 0; v = Const 1 }; Ld { loc = 1; reg = 0 } ];
      [ St { loc = 1; v = Const 1 }; Ld { loc = 0; reg = 0 } ];
    ]

(* Coherence (single writer): a reader may never observe values of one
   location going backwards (≺P is globally visible).  Forbidden outcomes:
   r0 newer than r1. *)
let coherence_1w =
  make ~name:"CoRR (coherence, one writer)" ~locs:1 ~regs:2
    [
      [ St { loc = 0; v = Const 1 }; St { loc = 0; v = Const 2 } ];
      [ Ld { loc = 0; reg = 0 }; Ld { loc = 0; reg = 1 } ];
    ]

(* Write serialization with two writers and two observers: CC (and
   stronger) force both observers to agree on the order of the two writes;
   Slow lets them disagree ((1,2),(2,1)). *)
let coherence_2w =
  make ~name:"2+2W observers (write serialization)" ~locs:1 ~regs:2
    [
      [ St { loc = 0; v = Const 1 } ];
      [ St { loc = 0; v = Const 2 } ];
      [ Ld { loc = 0; reg = 0 }; Ld { loc = 0; reg = 1 } ];
      [ Ld { loc = 0; reg = 0 }; Ld { loc = 0; reg = 1 } ];
    ]

(* Exclusive access, Fig. 4 of the paper: both processes acquire the same
   location; the reader sees either the initial value or the writer's final
   value, never the intermediate one outside the lock. *)
let exclusive_fig4 =
  make ~name:"exclusive access (Fig. 4)" ~locs:1 ~regs:1
    [
      [ Acq 0; Ld { loc = 0; reg = 0 }; Rel 0 ];
      [ Acq 0; St { loc = 0; v = Const 1 }; St { loc = 0; v = Const 2 };
        Rel 0 ];
    ]

(* Lock-protected increment-style exchange used by the DRF checker. *)
let locked_exchange =
  make ~name:"locked exchange" ~locs:1 ~regs:1
    [
      [ Acq 0; Ld { loc = 0; reg = 0 }; St { loc = 0; v = Const 7 }; Rel 0 ];
      [ Acq 0; Ld { loc = 0; reg = 0 }; St { loc = 0; v = Const 9 }; Rel 0 ];
    ]

(* Independent reads of independent writes: may two observers disagree on
   the order of writes to *different* locations by different writers?
   SC and TSO forbid the mixed outcome; CC and weaker allow it. *)
let iriw =
  make ~name:"IRIW" ~locs:2 ~regs:2
    [
      [ St { loc = 0; v = Const 1 } ];
      [ St { loc = 1; v = Const 1 } ];
      [ Ld { loc = 0; reg = 0 }; Ld { loc = 1; reg = 1 } ];
      [ Ld { loc = 1; reg = 0 }; Ld { loc = 0; reg = 1 } ];
    ]

(* Write-to-read causality: t1 sees t0's write and then writes a second
   location; must t2, seeing t1's write, also see t0's? *)
let wrc =
  make ~name:"WRC (write-to-read causality)" ~locs:2 ~regs:2
    [
      [ St { loc = 0; v = Const 1 } ];
      [ Wait_eq { loc = 0; v = 1 }; St { loc = 1; v = Const 1 } ];
      [ Wait_eq { loc = 1; v = 1 }; Ld { loc = 0; reg = 0 } ];
    ]

(* Load buffering: reads followed by writes to the other location.  The
   (1,1) outcome needs speculation; none of the operational models here
   produce it. *)
let lb =
  make ~name:"LB (load buffering)" ~locs:2 ~regs:1
    [
      [ Ld { loc = 1; reg = 0 }; St { loc = 0; v = Const 1 } ];
      [ Ld { loc = 0; reg = 0 }; St { loc = 1; v = Const 1 } ];
    ]

let all_standard =
  [
    mp_plain; mp_fence; mp_annotated; sb; coherence_1w; coherence_2w;
    exclusive_fig4; locked_exchange; iriw; wrc; lb; mp_annotated_nofence;
  ]
