(* Memory operations of the PMC model (Section IV-B of the paper).

   An operation is one of read / write / acquire / release / fence, executed
   by a process on a location.  The initial operation of a location (Def. 3)
   "behaves like a write and release" and is represented by its own
   constructor so that patterns can match it as either. *)

type kind =
  | Read
  | Write
  | Acquire
  | Release
  | Fence
  | Init  (* initial operation of a location: acts as write *and* release *)

(* [env_proc] is the pseudo-process that issues initial operations; the
   paper writes it as an epsilon "equivalent to all processes". *)
let env_proc = -1

(* [no_loc] is the location of a fence, which spans all locations. *)
let no_loc = -1

type t = {
  id : int;     (* issue index; unique within an execution *)
  kind : kind;
  proc : int;
  loc : int;
  value : int;  (* written value for writes/init, returned value for reads *)
}

let kind_to_string = function
  | Read -> "r"
  | Write -> "w"
  | Acquire -> "A"
  | Release -> "R"
  | Fence -> "F"
  | Init -> "init"

let pp ppf (o : t) =
  match o.kind with
  | Fence -> Fmt.pf ppf "#%d:(F,p%d)" o.id o.proc
  | Init -> Fmt.pf ppf "#%d:(init,v%d=%d)" o.id o.loc o.value
  | Read -> Fmt.pf ppf "#%d:(r,p%d,v%d)=%d" o.id o.proc o.loc o.value
  | Write -> Fmt.pf ppf "#%d:(w,p%d,v%d):=%d" o.id o.proc o.loc o.value
  | Acquire -> Fmt.pf ppf "#%d:(A,p%d,v%d)" o.id o.proc o.loc
  | Release -> Fmt.pf ppf "#%d:(R,p%d,v%d)" o.id o.proc o.loc

let to_string = Fmt.to_to_string pp

(* Whether an operation acts as the given base kind.  [Init] acts as both a
   write and a release (Def. 3); everything else acts only as itself. *)
let acts_as (o : t) (k : kind) =
  match o.kind, k with
  | Init, (Write | Release) -> true
  | k', k when k' = k -> true
  | _ -> false

let is_write o = acts_as o Write
let is_release o = acts_as o Release
let is_read o = o.kind = Read
let is_acquire o = o.kind = Acquire
let is_fence o = o.kind = Fence

(* Patterns (Def. 2): [(operation, p, v, value)] subsets of O, where a
   [None] component acts as the paper's '*'. *)
type pattern = {
  p_kind : kind option;
  p_proc : int option;
  p_loc : int option;
  p_value : int option;
}

let pattern ?kind ?proc ?loc ?value () =
  { p_kind = kind; p_proc = proc; p_loc = loc; p_value = value }

let matches (pat : pattern) (o : t) =
  let opt_ok f = function None -> true | Some x -> f x in
  opt_ok (fun k -> acts_as o k) pat.p_kind
  && opt_ok (fun p -> p = env_proc || o.proc = p || o.proc = env_proc) pat.p_proc
  && opt_ok (fun v -> o.loc = v) pat.p_loc
  && opt_ok (fun x -> o.value = x) pat.p_value
