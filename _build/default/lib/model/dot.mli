(** Graphviz export of executions — the dependency graphs of Figs. 2-5,
    transitively reduced by default like the paper's figures. *)

val of_execution :
  ?reduced:bool -> ?relation:Order.relation -> Execution.t -> string
