(** Data-race-freedom analysis and the observable SC-simulation property
    of Section IV-E ("able to simulate SC for data-race free
    programs"). *)

type access = { proc : int; loc : int; is_write : bool; op_id : int }
type race = { loc : int; a : access; b : access }

val pp_race : Format.formatter -> race -> unit

val find_race : ?limit:int -> Lprog.t -> race option
(** Enumerate every SC trace (up to [limit] traces) and look for two
    conflicting accesses left unordered by the PMC execution order built
    from that trace. *)

val is_drf : ?limit:int -> Lprog.t -> bool

val sc_equivalent : ?limit:int -> Lprog.t -> bool
(** The outcome set under the PMC operational semantics equals the outcome
    set under SC — the paper's claim, checkable for DRF programs. *)
