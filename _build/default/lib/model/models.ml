(* Operational semantics of the memory models compared in Section IV-E,
   used to enumerate complete outcome sets of litmus programs (Lprog).

   - [Sc]   Sequential Consistency [Lamport 79]: one memory, atomic steps.
   - [Pc]   Processor Consistency, implemented as its best-known
            operational instance: TSO-style per-processor FIFO store
            buffers draining into a single memory.  This realizes both GDO
            (single memory serializes each location) and GPO (the FIFO
            preserves each processor's write order).
   - [Cc]   Cache Consistency: per-location write logs; every observer
            applies each location's log in order, at its own pace.
   - [Slow] Slow Consistency [Hutto & Ahamad 90]: per-process copies;
            updates propagate per (writer, location) in order, with no
            cross-location or cross-writer guarantees.
   - [Pmc]  The paper's model: Slow reads/writes + acquire/release
            transferring the protected value (GDO) + fences inserting
            cross-location markers into the update streams (GPO) + the
            best-effort flush.  Writes issued while holding the location's
            lock stay local until release ("lazy release", Section V-A).

   Each model is a small labelled transition system; [Litmus.enumerate]
   explores it exhaustively. *)

module type SEM = sig
  val name : string

  type state

  val init : Lprog.t -> state
  val successors : Lprog.t -> state -> state list
  val is_final : Lprog.t -> state -> bool
  val outcome : Lprog.t -> state -> Lprog.outcome
  val key : state -> string
end

let clone2 (a : int array array) = Array.map Array.copy a

let marshal_key (st : 'a) = Marshal.to_string st []

let instr_at (p : Lprog.t) st_pc t =
  let th = p.Lprog.threads.(t) in
  if st_pc.(t) < Array.length th then Some th.(st_pc.(t)) else None

let all_done (p : Lprog.t) pc =
  let ok = ref true in
  Array.iteri
    (fun t th -> if pc.(t) < Array.length th then ok := false)
    p.Lprog.threads;
  !ok

(* ------------------------------------------------------------------ *)

module Sc : SEM = struct
  let name = "SC"

  type state = {
    pc : int array;
    regs : int array array;
    mem : int array;
    locks : int array;  (* -1 = free, otherwise holder *)
  }

  let init (p : Lprog.t) =
    {
      pc = Array.make (Lprog.n_threads p) 0;
      regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
      mem = Array.make p.locs 0;
      locks = Array.make p.locs (-1);
    }

  let step p st t : state option =
    match instr_at p st.pc t with
    | None -> None
    | Some i ->
        let adv st' = Some { st' with pc = (let a = Array.copy st'.pc in a.(t) <- a.(t) + 1; a) } in
        (match i with
        | Lprog.Ld { loc; reg } ->
            let regs = clone2 st.regs in
            regs.(t).(reg) <- st.mem.(loc);
            adv { st with regs }
        | Lprog.St { loc; v } ->
            let mem = Array.copy st.mem in
            mem.(loc) <- Lprog.eval st.regs.(t) v;
            adv { st with mem }
        | Lprog.Wait_eq { loc; v } ->
            if st.mem.(loc) = v then adv st else None
        | Lprog.Acq l ->
            if st.locks.(l) = -1 then begin
              let locks = Array.copy st.locks in
              locks.(l) <- t;
              adv { st with locks }
            end
            else None
        | Lprog.Rel l ->
            if st.locks.(l) = t then begin
              let locks = Array.copy st.locks in
              locks.(l) <- -1;
              adv { st with locks }
            end
            else failwith "SC: release without acquire"
        | Lprog.Fence | Lprog.Flush _ -> adv st)

  let successors p st =
    List.filter_map (step p st) (List.init (Lprog.n_threads p) Fun.id)

  let is_final p st = all_done p st.pc
  let outcome _p st = clone2 st.regs
  let key = marshal_key
end

(* ------------------------------------------------------------------ *)

module Pc : SEM = struct
  let name = "PC (TSO store buffers)"

  type state = {
    pc : int array;
    regs : int array array;
    mem : int array;
    locks : int array;
    buf : (int * int) list array;  (* per thread, oldest first *)
  }

  let init (p : Lprog.t) =
    {
      pc = Array.make (Lprog.n_threads p) 0;
      regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
      mem = Array.make p.locs 0;
      locks = Array.make p.locs (-1);
      buf = Array.make (Lprog.n_threads p) [];
    }

  (* Value of [loc] as seen by thread [t]: newest buffered store wins. *)
  let visible st t loc =
    let rec newest acc = function
      | [] -> acc
      | (l, v) :: rest -> newest (if l = loc then Some v else acc) rest
    in
    match newest None st.buf.(t) with
    | Some v -> v
    | None -> st.mem.(loc)

  let drain st t : state option =
    match st.buf.(t) with
    | [] -> None
    | (loc, v) :: rest ->
        let mem = Array.copy st.mem in
        mem.(loc) <- v;
        let buf = Array.copy st.buf in
        buf.(t) <- rest;
        Some { st with mem; buf }

  let step p st t : state option =
    match instr_at p st.pc t with
    | None -> None
    | Some i ->
        let adv st' = Some { st' with pc = (let a = Array.copy st'.pc in a.(t) <- a.(t) + 1; a) } in
        (match i with
        | Lprog.Ld { loc; reg } ->
            let regs = clone2 st.regs in
            regs.(t).(reg) <- visible st t loc;
            adv { st with regs }
        | Lprog.St { loc; v } ->
            let buf = Array.copy st.buf in
            buf.(t) <- st.buf.(t) @ [ (loc, Lprog.eval st.regs.(t) v) ];
            adv { st with buf }
        | Lprog.Wait_eq { loc; v } ->
            if visible st t loc = v then adv st else None
        | Lprog.Acq l ->
            (* an atomic RMW drains the store buffer first *)
            if st.buf.(t) = [] && st.locks.(l) = -1 then begin
              let locks = Array.copy st.locks in
              locks.(l) <- t;
              adv { st with locks }
            end
            else None
        | Lprog.Rel l ->
            if st.buf.(t) = [] then
              if st.locks.(l) = t then begin
                let locks = Array.copy st.locks in
                locks.(l) <- -1;
                adv { st with locks }
              end
              else failwith "PC: release without acquire"
            else None
        | Lprog.Fence -> if st.buf.(t) = [] then adv st else None
        | Lprog.Flush _ -> adv st)

  let successors p st =
    let n = Lprog.n_threads p in
    let instr_steps = List.filter_map (step p st) (List.init n Fun.id) in
    let drains = List.filter_map (drain st) (List.init n Fun.id) in
    instr_steps @ drains

  let is_final p st =
    all_done p st.pc && Array.for_all (fun b -> b = []) st.buf

  let outcome _p st = clone2 st.regs
  let key = marshal_key
end

(* ------------------------------------------------------------------ *)

module Cc : SEM = struct
  let name = "CC (per-location logs)"

  type state = {
    pc : int array;
    regs : int array array;
    locks : int array;
    logs : int list array;  (* per location, oldest first, starts [0] *)
    idx : int array array;  (* thread x location: applied prefix - 1 *)
  }

  let init (p : Lprog.t) =
    {
      pc = Array.make (Lprog.n_threads p) 0;
      regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
      locks = Array.make p.locs (-1);
      logs = Array.make p.locs [ 0 ];
      idx = Array.make_matrix (Lprog.n_threads p) p.locs 0;
    }

  let current st t loc = List.nth st.logs.(loc) st.idx.(t).(loc)

  let apply st t loc : state option =
    if st.idx.(t).(loc) < List.length st.logs.(loc) - 1 then begin
      let idx = clone2 st.idx in
      idx.(t).(loc) <- idx.(t).(loc) + 1;
      Some { st with idx }
    end
    else None

  let step p st t : state option =
    match instr_at p st.pc t with
    | None -> None
    | Some i ->
        let adv st' = Some { st' with pc = (let a = Array.copy st'.pc in a.(t) <- a.(t) + 1; a) } in
        (match i with
        | Lprog.Ld { loc; reg } ->
            let regs = clone2 st.regs in
            regs.(t).(reg) <- current st t loc;
            adv { st with regs }
        | Lprog.St { loc; v } ->
            let logs = Array.copy st.logs in
            logs.(loc) <- st.logs.(loc) @ [ Lprog.eval st.regs.(t) v ];
            let idx = clone2 st.idx in
            idx.(t).(loc) <- List.length logs.(loc) - 1;
            adv { st with logs; idx }
        | Lprog.Wait_eq { loc; v } ->
            if current st t loc = v then adv st else None
        | Lprog.Acq l ->
            if st.locks.(l) = -1 then begin
              let locks = Array.copy st.locks in
              locks.(l) <- t;
              (* synchronizing on l brings the acquirer up to date on l *)
              let idx = clone2 st.idx in
              idx.(t).(l) <- List.length st.logs.(l) - 1;
              adv { st with locks; idx }
            end
            else None
        | Lprog.Rel l ->
            if st.locks.(l) = t then begin
              let locks = Array.copy st.locks in
              locks.(l) <- -1;
              adv { st with locks }
            end
            else failwith "CC: release without acquire"
        | Lprog.Fence | Lprog.Flush _ -> adv st)

  let successors p st =
    let n = Lprog.n_threads p in
    let instr_steps = List.filter_map (step p st) (List.init n Fun.id) in
    let applies =
      List.concat_map
        (fun t ->
          List.filter_map (apply st t) (List.init p.Lprog.locs Fun.id))
        (List.init n Fun.id)
    in
    instr_steps @ applies

  let is_final p st = all_done p st.pc
  let outcome _p st = clone2 st.regs
  let key = marshal_key
end

(* ------------------------------------------------------------------ *)

(* Update streams shared by Slow and PMC: one FIFO per (writer, observer)
   pair holding value updates and (for PMC) fence markers.  An update may
   be taken out of the middle of the stream as long as no earlier update to
   the same location and no earlier marker is still pending; a marker can
   only be consumed from the head.  This realizes exactly ≺P (per-location
   order preserved) and ≺F (markers). *)
module Streams = struct
  type item = Upd of int * int | Mark

  type t = item list array array  (* writer x observer, oldest first *)

  let create n = Array.init n (fun _ -> Array.make n [])

  let clone (s : t) = Array.map Array.copy s

  (* positions of items ready to be applied at observer [q] from writer
     [w]: a mark blocks everything behind it and is itself ready only at
     the head; an update is ready if no earlier same-location update is
     pending. *)
  let ready (s : t) ~w ~q : (int * item) list =
    match s.(w).(q) with
    | [] -> []
    | Mark :: _ -> [ (0, Mark) ]
    | items ->
        let rec go i blocked = function
          | [] -> []
          | Mark :: _ -> []
          | Upd (l, v) :: rest ->
              let here =
                if List.mem l blocked then [] else [ (i, Upd (l, v)) ]
              in
              here @ go (i + 1) (l :: blocked) rest
        in
        go 0 [] items

  let remove_nth (s : t) ~w ~q n =
    let s = clone s in
    s.(w).(q) <- List.filteri (fun i _ -> i <> n) s.(w).(q);
    s

  let push_all (s : t) ~w item =
    let s = clone s in
    Array.iteri
      (fun q items -> if q <> w then s.(w).(q) <- items @ [ item ])
      s.(w);
    s
end

type slow_state = {
  s_pc : int array;
  s_regs : int array array;
  s_locks : int array;
  s_copies : int array array;  (* thread x location *)
  s_master : int array;        (* lock-protected value (PMC/EC) *)
  s_streams : Streams.t;
  s_hoisted : int list array;  (* per thread: acquires executed early *)
}

let slow_init (p : Lprog.t) =
  {
    s_pc = Array.make (Lprog.n_threads p) 0;
    s_regs = Array.make_matrix (Lprog.n_threads p) p.regs 0;
    s_locks = Array.make p.locs (-1);
    s_copies = Array.make_matrix (Lprog.n_threads p) p.locs 0;
    s_master = Array.make p.locs 0;
    s_streams = Streams.create (Lprog.n_threads p);
    s_hoisted = Array.make (Lprog.n_threads p) [];
  }

let slow_applies (p : Lprog.t) (st : slow_state) : slow_state list =
  let n = Lprog.n_threads p in
  let acc = ref [] in
  for w = 0 to n - 1 do
    for q = 0 to n - 1 do
      if w <> q then
        List.iter
          (fun (i, item) ->
            let streams = Streams.remove_nth st.s_streams ~w ~q i in
            match item with
            | Streams.Mark -> acc := { st with s_streams = streams } :: !acc
            | Streams.Upd (l, v) ->
                let copies = clone2 st.s_copies in
                copies.(q).(l) <- v;
                acc :=
                  { st with s_streams = streams; s_copies = copies } :: !acc)
          (Streams.ready st.s_streams ~w ~q)
    done
  done;
  !acc

(* [lazy_release]: when true (PMC), writes made while holding the
   location's lock stay local until release; fences emit markers and
   acquire/release transfer the master value. *)
let slow_like_step ~fences ~sync_locks (p : Lprog.t) (st : slow_state) t :
    slow_state option =
  match instr_at p st.s_pc t with
  | None -> None
  | Some _ when List.mem st.s_pc.(t) st.s_hoisted.(t) ->
      (* this instruction was already executed early: consume it *)
      let pc = Array.copy st.s_pc in
      let hoisted = Array.copy st.s_hoisted in
      hoisted.(t) <- List.filter (fun j -> j <> st.s_pc.(t)) hoisted.(t);
      pc.(t) <- pc.(t) + 1;
      Some { st with s_pc = pc; s_hoisted = hoisted }
  | Some i ->
      let adv st' =
        let pc = Array.copy st'.s_pc in
        pc.(t) <- pc.(t) + 1;
        Some { st' with s_pc = pc }
      in
      (match i with
      | Lprog.Ld { loc; reg } ->
          let regs = clone2 st.s_regs in
          regs.(t).(reg) <- st.s_copies.(t).(loc);
          adv { st with s_regs = regs }
      | Lprog.St { loc; v } ->
          let value = Lprog.eval st.s_regs.(t) v in
          let copies = clone2 st.s_copies in
          copies.(t).(loc) <- value;
          let holds_lock = sync_locks && st.s_locks.(loc) = t in
          let streams =
            if holds_lock then st.s_streams  (* lazy release: stays local *)
            else Streams.push_all st.s_streams ~w:t (Streams.Upd (loc, value))
          in
          adv { st with s_copies = copies; s_streams = streams }
      | Lprog.Wait_eq { loc; v } ->
          if st.s_copies.(t).(loc) = v then adv st else None
      | Lprog.Acq l ->
          if st.s_locks.(l) = -1 then begin
            let locks = Array.copy st.s_locks in
            locks.(l) <- t;
            let copies = clone2 st.s_copies in
            if sync_locks then copies.(t).(l) <- st.s_master.(l);
            adv { st with s_locks = locks; s_copies = copies }
          end
          else None
      | Lprog.Rel l ->
          if st.s_locks.(l) = t then begin
            let locks = Array.copy st.s_locks in
            locks.(l) <- -1;
            let master = Array.copy st.s_master in
            if sync_locks then master.(l) <- st.s_copies.(t).(l);
            adv { st with s_locks = locks; s_master = master }
          end
          else failwith "Slow/PMC: release without acquire"
      | Lprog.Fence ->
          if fences then
            adv { st with s_streams = Streams.push_all st.s_streams ~w:t Streams.Mark }
          else adv st
      | Lprog.Flush l ->
          adv
            {
              st with
              s_streams =
                Streams.push_all st.s_streams ~w:t
                  (Streams.Upd (l, st.s_copies.(t).(l)));
            })

module Slow : SEM = struct
  let name = "Slow"

  type state = slow_state

  let init = slow_init

  let successors p st =
    let n = Lprog.n_threads p in
    List.filter_map
      (slow_like_step ~fences:false ~sync_locks:false p st)
      (List.init n Fun.id)
    @ slow_applies p st

  let is_final p st = all_done p st.s_pc
  let outcome _p st = clone2 st.s_regs
  let key = marshal_key
end

(* Entry-Consistency-like semantics: PMC's value-transferring locks and
   fences, but synchronization operations of one process stay in program
   order — the strengthening the paper relaxes ("our model is weaker
   [than EC] because acquire/releases of different locations by the same
   process are not ordered, unless a fence is applied"). *)
module Ec : SEM = struct
  let name = "EC"

  type state = slow_state

  let init = slow_init

  let successors p st =
    let n = Lprog.n_threads p in
    List.filter_map
      (slow_like_step ~fences:true ~sync_locks:true p st)
      (List.init n Fun.id)
    @ slow_applies p st

  let is_final p st = all_done p st.s_pc
  let outcome _p st = clone2 st.s_regs
  let key = marshal_key
end

(* Full PMC: EC's transitions plus acquire hoisting.  Because
   acquire/releases of different locations are unordered unless fenced,
   an implementation (compiler or out-of-order core) may perform a later
   acquire early.  A pending [Acq l] may execute ahead of program order
   when every instruction between the program counter and it is a plain
   read, write or wait on a *different* location — a fence, another
   synchronization operation, a flush or any operation on [l] blocks the
   hoist.  This is exactly the transformation Fig. 6's fence at line 11
   exists to forbid ("prevents the compiler from moving the acquire at
   line 13 to before the while loop"). *)
module Pmc : SEM = struct
  let name = "PMC"

  type state = slow_state

  let init = slow_init

  let hoist_candidates (p : Lprog.t) (st : slow_state) t :
      slow_state list =
    let th = p.Lprog.threads.(t) in
    let rec scan j acc =
      if j >= Array.length th then acc
      else if List.mem j st.s_hoisted.(t) then scan (j + 1) acc
      else
        match th.(j) with
        | Lprog.Acq l when j > st.s_pc.(t) ->
            (* hoist if the lock is free; scanning stops here either way
               (moving past another sync operation is not allowed) *)
            if st.s_locks.(l) = -1 then
              let locks = Array.copy st.s_locks in
              locks.(l) <- t;
              let copies = clone2 st.s_copies in
              copies.(t).(l) <- st.s_master.(l);
              let hoisted = Array.copy st.s_hoisted in
              hoisted.(t) <- List.sort compare (j :: hoisted.(t));
              { st with s_locks = locks; s_copies = copies;
                        s_hoisted = hoisted }
              :: acc
            else acc
        | Lprog.Acq _ | Lprog.Rel _ | Lprog.Fence | Lprog.Flush _ -> acc
        | Lprog.Ld _ | Lprog.St _ | Lprog.Wait_eq _ ->
            (* transparent unless a later candidate touches this location;
               checked at the candidate below *)
            scan (j + 1) acc
    in
    (* re-scan with the same-location restriction: an op on l between pc
       and the acquire blocks the hoist *)
    let blocked_locs upto =
      let locs = ref [] in
      for k = st.s_pc.(t) to upto - 1 do
        if not (List.mem k st.s_hoisted.(t)) then
          match th.(k) with
          | Lprog.Ld { loc; _ } | Lprog.St { loc; _ }
          | Lprog.Wait_eq { loc; _ } ->
              locs := loc :: !locs
          | _ -> ()
      done;
      !locs
    in
    List.filter_map
      (fun st' ->
        (* find which acquire was hoisted (the new index) *)
        let j =
          List.find
            (fun j -> not (List.mem j st.s_hoisted.(t)))
            st'.s_hoisted.(t)
        in
        match th.(j) with
        | Lprog.Acq l when not (List.mem l (blocked_locs j)) -> Some st'
        | _ -> None)
      (scan st.s_pc.(t) [])

  let successors p st =
    let n = Lprog.n_threads p in
    List.filter_map
      (slow_like_step ~fences:true ~sync_locks:true p st)
      (List.init n Fun.id)
    @ slow_applies p st
    @ List.concat_map (fun t -> hoist_candidates p st t) (List.init n Fun.id)

  let is_final p st = all_done p st.s_pc
  let outcome _p st = clone2 st.s_regs
  let key = marshal_key
end

let all : (module SEM) list =
  [ (module Sc); (module Pc); (module Cc); (module Ec); (module Slow);
    (module Pmc) ]
