(** Observation semantics: last writes, readable values and data races
    (Section IV-D, Definitions 11 and 12). *)

val last_writes : ?view:int -> Execution.t -> Op.t -> Op.t list
(** The last writes W before an operation (Def. 11): maximal writes to its
    location ordered before it.  Defaults to the issuing process's view,
    under which the set is never empty (the initial write is a
    predecessor).  More than one element means a race. *)

val readable_writes : Execution.t -> Op.t -> Op.t list
(** The writes a read may legally return (Def. 12): not older than a last
    write (values propagate slowly, so already-overwritten values remain
    readable) and not ordered after the read. *)

val readable_values : Execution.t -> Op.t -> int list
(** [readable_writes] projected to sorted distinct values. *)

(** A write-write data race: two writes to one location unordered by ≺. *)
type race = { loc : int; a : Op.t; b : Op.t }

val pp_race : Format.formatter -> race -> unit
val write_write_races : Execution.t -> race list
val race_free : Execution.t -> bool

val deterministic_read : Execution.t -> Op.t -> bool
(** Exactly one readable value. *)
