lib/model/lprog.mli: Set
