lib/model/drf.mli: Format Lprog
