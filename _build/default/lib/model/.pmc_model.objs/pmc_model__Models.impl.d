lib/model/models.ml: Array Fun List Lprog Marshal
