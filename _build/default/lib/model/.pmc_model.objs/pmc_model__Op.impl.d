lib/model/op.ml: Fmt
