lib/model/order.ml: Array Execution Fun Hashtbl List Op
