lib/model/order.mli: Execution Op
