lib/model/lprog.ml: Array List Set String
