lib/model/execution.ml: Array Fmt Hashtbl List Op Printf
