lib/model/observe.ml: Execution Fmt List Op Order
