lib/model/history.mli: Execution Format Op
