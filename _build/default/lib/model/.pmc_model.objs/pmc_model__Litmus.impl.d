lib/model/litmus.ml: Fmt Hashtbl List Lprog Models Printf Queue
