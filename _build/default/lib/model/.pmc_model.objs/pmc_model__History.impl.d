lib/model/history.ml: Array Execution Fmt Hashtbl List Observe Op Order
