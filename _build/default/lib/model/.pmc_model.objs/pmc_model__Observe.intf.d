lib/model/observe.mli: Execution Format Op
