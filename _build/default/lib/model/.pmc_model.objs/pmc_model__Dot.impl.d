lib/model/dot.ml: Buffer Execution List Op Order Printf
