lib/model/execution.mli: Format Hashtbl Op
