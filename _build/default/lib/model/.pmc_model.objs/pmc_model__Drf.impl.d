lib/model/drf.ml: Array Execution Fmt History List Litmus Lprog Models Op Order
