lib/model/models.mli: Lprog
