lib/model/litmus.mli: Format Lprog Models
