lib/model/dot.mli: Execution Order
