(* Instruction cache model: tags only (instruction bytes are never needed,
   only hit/miss timing).  Direct-mapped or set-associative. *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array array;  (* -1 = invalid *)
  lru : int array array;
  mutable tick : int;
}

let create ~sets ~ways ~line_bytes =
  {
    sets;
    ways;
    line_bytes;
    tags = Array.make_matrix sets ways (-1);
    lru = Array.make_matrix sets ways 0;
    tick = 0;
  }

let fetch_line t addr : bool =
  let set = addr / t.line_bytes mod t.sets in
  let tag = addr / t.line_bytes / t.sets in
  t.tick <- t.tick + 1;
  let hit = ref false in
  for w = 0 to t.ways - 1 do
    if t.tags.(set).(w) = tag then begin
      hit := true;
      t.lru.(set).(w) <- t.tick
    end
  done;
  if not !hit then begin
    (* evict LRU way *)
    let v = ref 0 in
    for w = 1 to t.ways - 1 do
      if t.lru.(set).(w) < t.lru.(set).(!v) then v := w
    done;
    t.tags.(set).(!v) <- tag;
    t.lru.(set).(!v) <- t.tick
  end;
  !hit

let invalidate_all t =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.tags
