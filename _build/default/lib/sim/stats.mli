(** Per-core cycle accounting with the stall categories of Fig. 8 (busy,
    private-read, shared-read, write and I-cache stalls), plus lock-spin
    and flush-instruction time, which the paper reports separately. *)

type category =
  | Busy
  | Private_read_stall
  | Shared_read_stall
  | Write_stall
  | Icache_stall
  | Lock_stall
  | Flush_overhead

val categories : category list
val category_name : category -> string

(** Mutable per-core counters.  The event counters (cache hits, lock
    transfers, …) are written directly by the machine and lock layers. *)
type core = {
  mutable cycles : int array;
  mutable instructions : int;
  mutable dcache_hits : int;
  mutable dcache_misses : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable lock_acquires : int;
  mutable lock_transfers : int;
  mutable noc_writes : int;
  mutable flushes : int;
}

val core_create : unit -> core
val add : core -> category -> int -> unit
val get : core -> category -> int
val total : core -> int

type t = { cores : core array }

val create : int -> t
val core : t -> int -> core

type summary = {
  wall_cycles : int;
  per_category : (category * int) list;
  total_cycles : int;
  instructions : int;
  dcache_hits : int;
  dcache_misses : int;
  icache_misses : int;
  lock_acquires : int;
  lock_transfers : int;
  noc_writes : int;
  flushes : int;
}

val summarize : t -> summary
val category_cycles : summary -> category -> int

val fraction : summary -> category -> float
(** Fraction of summed core time spent in a category — the percentages
    plotted in Fig. 8. *)

val utilization : summary -> float
(** [fraction summary Busy]. *)

val pp_summary : Format.formatter -> summary -> unit
