(* Set-associative write-back, write-allocate data cache with true line
   storage.

   The cache holds its own copy of line data, so a dirty or stale line is
   really stale: another core reading the backing SDRAM does *not* see this
   core's cached writes until software writes the line back.  This is the
   non-coherence the paper's software cache coherency protocol must manage.

   Like the MicroBlaze cache described in Section V-B, the only maintenance
   operations are invalidate (discard, even if dirty) and write-back +
   invalidate; there is no way to reconcile a dirty line while keeping it. *)

type line = {
  mutable tag : int;      (* -1 = invalid *)
  mutable dirty : bool;
  mutable lru : int;
  data : Bytes.t;
}

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  lines : line array array;      (* set -> way -> line *)
  mutable tick : int;
  (* Backing store callbacks: read/write a whole aligned line. *)
  backing_read : int -> Bytes.t -> unit;
  backing_write : int -> Bytes.t -> unit;
}

type outcome = {
  hit : bool;
  refilled : bool;          (* line fetched from backing store *)
  wrote_back : bool;        (* a dirty victim was written back *)
}

let create ~sets ~ways ~line_bytes ~backing_read ~backing_write =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create";
  {
    sets;
    ways;
    line_bytes;
    lines =
      Array.init sets (fun _ ->
          Array.init ways (fun _ ->
              { tag = -1; dirty = false; lru = 0;
                data = Bytes.create line_bytes }));
    tick = 0;
    backing_read;
    backing_write;
  }

let line_addr t addr = addr - (addr mod t.line_bytes)
let set_of t addr = addr / t.line_bytes mod t.sets
let tag_of t addr = addr / t.line_bytes / t.sets

let touch t line =
  t.tick <- t.tick + 1;
  line.lru <- t.tick

let find t addr : line option =
  let set = t.lines.(set_of t addr) in
  let tag = tag_of t addr in
  let rec go i =
    if i >= t.ways then None
    else if set.(i).tag = tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let victim t addr : line =
  let set = t.lines.(set_of t addr) in
  let v = ref set.(0) in
  (* prefer an invalid way, otherwise least recently used *)
  (try
     Array.iter
       (fun l ->
         if l.tag = -1 then begin
           v := l;
           raise Exit
         end)
       set
   with Exit -> ());
  if !v.tag <> -1 then
    Array.iter (fun l -> if l.lru < !v.lru then v := l) set;
  !v

(* Ensure the line containing [addr] is resident; returns the line and the
   outcome for cycle accounting. *)
let ensure t addr : line * outcome =
  match find t addr with
  | Some l ->
      touch t l;
      (l, { hit = true; refilled = false; wrote_back = false })
  | None ->
      let l = victim t addr in
      let wrote_back =
        if l.tag <> -1 && l.dirty then begin
          let old_addr = (l.tag * t.sets + set_of t addr) * t.line_bytes in
          t.backing_write old_addr l.data;
          true
        end
        else false
      in
      t.backing_read (line_addr t addr) l.data;
      l.tag <- tag_of t addr;
      l.dirty <- false;
      touch t l;
      (l, { hit = false; refilled = true; wrote_back })

let load_u32 t addr : int32 * outcome =
  let l, oc = ensure t addr in
  (Bytes.get_int32_le l.data (addr mod t.line_bytes), oc)

let store_u32 t addr v : outcome =
  let l, oc = ensure t addr in
  Bytes.set_int32_le l.data (addr mod t.line_bytes) v;
  l.dirty <- true;
  oc

let load_u8 t addr : int * outcome =
  let l, oc = ensure t addr in
  (Char.code (Bytes.get l.data (addr mod t.line_bytes)), oc)

let store_u8 t addr v : outcome =
  let l, oc = ensure t addr in
  Bytes.set l.data (addr mod t.line_bytes) (Char.chr (v land 0xff));
  l.dirty <- true;
  oc

type maint = { lines_touched : int; lines_written_back : int }

(* Iterate over the resident lines overlapping [addr, addr+len). *)
let iter_range t ~addr ~len f =
  let first = line_addr t addr in
  let last = line_addr t (addr + len - 1) in
  let a = ref first in
  while !a <= last do
    (match find t !a with Some l -> f !a l | None -> ());
    a := !a + t.line_bytes
  done

(* Write-back + invalidate (the MicroBlaze "flush"): dirty lines go to the
   backing store, then all lines in range are discarded. *)
let wb_inval_range t ~addr ~len : maint =
  let touched = ref 0 and wrote = ref 0 in
  iter_range t ~addr ~len (fun line_a l ->
      incr touched;
      if l.dirty then begin
        t.backing_write line_a l.data;
        incr wrote
      end;
      l.tag <- -1;
      l.dirty <- false);
  { lines_touched = !touched; lines_written_back = !wrote }

(* Invalidate without write-back: cached modifications are lost. *)
let inval_range t ~addr ~len : maint =
  let touched = ref 0 in
  iter_range t ~addr ~len (fun _ l ->
      incr touched;
      l.tag <- -1;
      l.dirty <- false);
  { lines_touched = !touched; lines_written_back = 0 }

let flush_all t : maint =
  let touched = ref 0 and wrote = ref 0 in
  Array.iteri
    (fun set_idx set ->
      Array.iter
        (fun l ->
          if l.tag <> -1 then begin
            incr touched;
            if l.dirty then begin
              let a = (l.tag * t.sets + set_idx) * t.line_bytes in
              t.backing_write a l.data;
              incr wrote
            end;
            l.tag <- -1;
            l.dirty <- false
          end)
        set)
    t.lines;
  { lines_touched = !touched; lines_written_back = !wrote }

let resident t addr = find t addr <> None
let dirty t addr = match find t addr with Some l -> l.dirty | None -> false
