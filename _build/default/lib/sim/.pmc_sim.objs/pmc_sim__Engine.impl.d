lib/sim/engine.ml: Array Config Effect Printf Stats
