lib/sim/icache.mli:
