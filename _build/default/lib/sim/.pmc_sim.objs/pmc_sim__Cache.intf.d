lib/sim/cache.mli: Bytes
