lib/sim/sdram.mli: Bytes
