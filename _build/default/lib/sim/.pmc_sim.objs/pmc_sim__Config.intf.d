lib/sim/config.mli:
