lib/sim/prng.mli:
