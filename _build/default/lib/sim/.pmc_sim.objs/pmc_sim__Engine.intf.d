lib/sim/engine.mli: Config Effect Stats
