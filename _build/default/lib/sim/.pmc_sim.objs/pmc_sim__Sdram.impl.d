lib/sim/sdram.ml: Bytes Char
