lib/sim/icache.ml: Array
