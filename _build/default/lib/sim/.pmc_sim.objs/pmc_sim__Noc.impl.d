lib/sim/noc.ml: Array Bytes Config Engine
