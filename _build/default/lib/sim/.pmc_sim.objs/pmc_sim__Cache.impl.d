lib/sim/cache.ml: Array Bytes Char
