lib/sim/machine.mli: Cache Config Engine Stats
