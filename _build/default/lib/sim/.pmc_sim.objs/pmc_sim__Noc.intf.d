lib/sim/noc.mli: Bytes Config Engine
