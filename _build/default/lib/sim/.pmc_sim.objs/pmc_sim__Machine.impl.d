lib/sim/machine.ml: Array Bytes Cache Char Config Engine Icache Noc Prng Sdram Stats
