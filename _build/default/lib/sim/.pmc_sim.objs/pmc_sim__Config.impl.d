lib/sim/config.ml:
