(* Distributed-shared-memory back-end (Table II, third column).

   Every shared object is replicated at a common offset in each tile's
   local memory; cores only ever read and write their own replica, which is
   fast and does not disturb other tiles.  Coherence is managed in
   software over the *write-only* NoC:

     entry_x   acquire the lock; if another tile produced the newest
               version, that version is written into the acquirer's local
               memory (the handover of the lazy release) — the acquirer
               stalls for the NoC transfer;
     exit_x    lazy: just record this tile as the owner of the newest
               version and release;
     entry_ro  atomic-sized objects: nothing (the replica is kept fresh by
               flushes); larger objects take the lock and pull the newest
               version to avoid torn reads;
     exit_ro   unlock if entry_ro locked;
     flush     push the local replica to every other tile's local memory
               (posted writes — best effort, arrival is asynchronous);
     fence     compiler barrier; inter-tile ordering is preserved by the
               per-link FIFO of the NoC. *)

open Pmc_sim

type t = { m : Machine.t }

let name = "dsm"

let create m = { m }
let machine t = t.m

let alloc t ~name ~bytes =
  let lock = Pmc_lock.Dlock.create t.m in
  let o = Shared.make ~name ~size:bytes ~lock in
  o.Shared.dsm_off <- Machine.alloc_dsm t.m ~bytes;
  o

let replica_addr t (o : Shared.t) ~tile =
  Machine.local_addr t.m ~tile ~off:o.Shared.dsm_off

(* Bring the newest version (owned by [o.last_writer]) into [core]'s
   replica, charging the NoC transfer to the acquirer. *)
let pull_version t (o : Shared.t) =
  let core = Machine.core_id t.m in
  match o.Shared.last_writer with
  | -1 -> ()
  | w when w = core -> ()
  | w ->
      let words = Shared.words o in
      let cfg = Machine.config t.m in
      for i = 0 to words - 1 do
        let v = Machine.peek_u32 t.m (replica_addr t o ~tile:w + (4 * i)) in
        Machine.poke_u32 t.m (replica_addr t o ~tile:core + (4 * i)) v
      done;
      Engine.consume (Machine.engine t.m) Stats.Shared_read_stall
        (Config.noc_latency cfg ~src:w ~dst:core ~words)

let entry_x t (o : Shared.t) =
  Pmc_lock.Dlock.acquire o.Shared.lock;
  pull_version t o

let exit_x t (o : Shared.t) =
  (* lazy release: the data stays local until the next acquirer pulls it *)
  o.Shared.last_writer <- Machine.core_id t.m;
  Pmc_lock.Dlock.release o.Shared.lock

let entry_ro t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then begin
    Pmc_lock.Dlock.acquire_ro o.Shared.lock;
    pull_version t o
  end

let exit_ro _t (o : Shared.t) =
  if not (Shared.is_atomic_sized o) then
    Pmc_lock.Dlock.release_ro o.Shared.lock

let fence _t = ()

let flush t (o : Shared.t) =
  let core = Machine.core_id t.m in
  let cfg = Machine.config t.m in
  for tile = 0 to cfg.Config.cores - 1 do
    if tile <> core then
      Machine.noc_push t.m ~dst:tile ~src_off:o.Shared.dsm_off
        ~dst_off:o.Shared.dsm_off ~len:o.Shared.size
  done;
  o.Shared.last_writer <- core

let read_u32 t (o : Shared.t) word =
  let core = Machine.core_id t.m in
  Machine.load_u32 t.m ~shared:true (replica_addr t o ~tile:core + (4 * word))

let write_u32 t (o : Shared.t) word v =
  let core = Machine.core_id t.m in
  Machine.store_u32 t.m ~shared:true
    (replica_addr t o ~tile:core + (4 * word))
    v

let read_u8 t (o : Shared.t) i =
  let core = Machine.core_id t.m in
  Machine.load_u8 t.m ~shared:true (replica_addr t o ~tile:core + i)

let write_u8 t (o : Shared.t) i v =
  let core = Machine.core_id t.m in
  Machine.store_u8 t.m ~shared:true (replica_addr t o ~tile:core + i) v

(* The canonical version lives in the last writer's replica (tile 0 before
   any write). *)
let peek_u32 t (o : Shared.t) word =
  let tile = if o.Shared.last_writer >= 0 then o.Shared.last_writer else 0 in
  Machine.peek_u32 t.m (replica_addr t o ~tile + (4 * word))

(* Initialization must reach every replica: there is no backing store. *)
let poke_u32 t (o : Shared.t) word v =
  let cfg = Machine.config t.m in
  for tile = 0 to cfg.Config.cores - 1 do
    Machine.poke_u32 t.m (replica_addr t o ~tile + (4 * word)) v
  done
