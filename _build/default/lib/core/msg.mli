(** The flag/data communication pattern of Figs. 1, 5 and 6. *)

val send : Api.t -> data:Shared.t -> flag:Shared.t -> int32 array -> unit
(** The annotated publish of Fig. 6: exclusive write of the payload,
    fence, then flag raise + flush. *)

val recv : Api.t -> data:Shared.t -> flag:Shared.t -> int32 array
(** Poll the flag read-only, fence, acquire and read the payload. *)

(** The Fig. 1 demonstration: raw remote writes over paths of different
    latency, no annotations — the flag overtakes the payload and the
    reader sees stale data. *)
module Broken : sig
  val x_off : int
  val flag_off : int

  type outcome = { observed : int32; expected : int32 }

  val ok : outcome -> bool

  val run :
    Pmc_sim.Machine.t ->
    src:int -> dst:int -> latency_x:int -> latency_flag:int -> fixed:bool ->
    outcome
  (** Run the Fig. 1 program; [fixed] inserts the drain a PMC-aware
      compiler would (equivalent to the paper's "read of X between the
      writes"). *)
end
