lib/core/spm.ml: Array Config Engine Hashtbl Machine Pmc_lock Pmc_sim Shared Stats
