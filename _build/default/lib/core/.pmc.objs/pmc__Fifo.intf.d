lib/core/fifo.mli: Api
