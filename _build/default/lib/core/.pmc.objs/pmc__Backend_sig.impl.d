lib/core/backend_sig.ml: Pmc_sim Shared
