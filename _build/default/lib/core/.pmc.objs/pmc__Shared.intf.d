lib/core/shared.mli: Format Pmc_lock
