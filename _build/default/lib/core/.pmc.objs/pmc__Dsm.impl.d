lib/core/dsm.ml: Config Engine Machine Pmc_lock Pmc_sim Shared Stats
