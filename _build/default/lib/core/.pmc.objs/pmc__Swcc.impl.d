lib/core/swcc.ml: Machine Pmc_lock Pmc_sim Shared
