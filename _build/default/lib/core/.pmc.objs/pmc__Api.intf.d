lib/core/api.mli: Backend_sig Pmc_sim Shared
