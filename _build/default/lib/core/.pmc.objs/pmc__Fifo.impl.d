lib/core/fifo.ml: Api Array Int32 Printf Shared
