lib/core/barrier.mli: Api
