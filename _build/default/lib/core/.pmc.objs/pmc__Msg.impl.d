lib/core/msg.ml: Api Array Engine Machine Pmc_sim Shared
