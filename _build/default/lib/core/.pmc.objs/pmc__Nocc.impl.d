lib/core/nocc.ml: Machine Pmc_lock Pmc_sim Shared
