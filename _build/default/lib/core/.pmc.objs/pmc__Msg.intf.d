lib/core/msg.mli: Api Pmc_sim Shared
