lib/core/shared.ml: Fmt Pmc_lock
