lib/core/backends.ml: Api Backend_sig Dsm Nocc Pmc_sim Seqcst Spm Swcc
