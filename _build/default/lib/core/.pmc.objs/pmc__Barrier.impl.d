lib/core/barrier.ml: Api Hashtbl Int32 Option Pmc_sim Shared
