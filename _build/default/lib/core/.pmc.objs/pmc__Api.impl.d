lib/core/api.ml: Array Backend_sig Config Engine Fmt Fun Int32 List Machine Pmc_sim Shared
