lib/core/backends.mli: Api Backend_sig Pmc_sim
