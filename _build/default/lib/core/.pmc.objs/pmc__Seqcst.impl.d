lib/core/seqcst.ml: Engine Int32 Machine Pmc_lock Pmc_sim Shared Stats
