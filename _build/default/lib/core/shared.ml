(* Handles for shared objects.

   The PMC annotations operate on whole shared objects of any size
   (Section V-A).  A handle carries the object's identity, its size, the
   lock that implements ≺S for it, and the placement fields each back-end
   fills in at allocation time.

   Objects of at most one machine word (4 bytes on the 32-bit platform)
   are "atomic-sized": reads and writes of them are indivisible, so
   entry_ro does not need to lock them.  The paper states the rule for one
   byte — the only size that is indivisible on every machine — but its own
   FIFO (Fig. 9) polls word-sized pointers without locking, which is sound
   exactly because the platform's bus transfers words atomically.  We
   follow the platform rule and document the substitution in DESIGN.md. *)

type t = {
  id : int;
  name : string;
  size : int;                       (* bytes *)
  lock : Pmc_lock.Dlock.t;
  mutable sdram_addr : int;         (* cached or uncached SDRAM; -1 = none *)
  mutable dsm_off : int;            (* common local-memory offset; -1 = none *)
  mutable last_writer : int;        (* tile owning the newest version; -1 = none *)
}

(* Objects of at most [!atomic_threshold] bytes are treated as atomic for
   entry_ro (no locking).  4 = platform word (the default); 1 = the
   paper's conservative byte rule; 0 = lock on every read-only entry.
   Exposed as a knob for the ablation bench. *)
let atomic_threshold = ref 4

let is_atomic_sized o = o.size <= !atomic_threshold

let words o = (o.size + 3) / 4

let next_id = ref 0

let make ~name ~size ~lock =
  let id = !next_id in
  incr next_id;
  { id; name; size; lock; sdram_addr = -1; dsm_off = -1; last_writer = -1 }

let pp ppf o = Fmt.pf ppf "%s#%d[%dB]" o.name o.id o.size
