(** Sense-reversing barrier built purely from the PMC annotations
    (exclusive arrival counter + the Fig. 6 publish pattern for the
    release), so it is portable across all back-ends.

    One caveat of the centralized design: each participating {e core}
    tracks its phase parity, so use one waiter per core. *)

type t

val create : Api.t -> name:string -> parties:int -> t
val wait : t -> unit
