(** Back-end selection — the "compiler setting" that re-targets an
    annotated application to a different memory architecture. *)

type kind =
  | Seqcst  (** idealized sequentially consistent memory (reference) *)
  | Nocc    (** shared data uncached — the Fig. 8 baseline *)
  | Swcc    (** software cache coherency (Table II, column 1) *)
  | Dsm     (** distributed shared memory over the write-only NoC (col. 2) *)
  | Spm     (** scratch-pad staging (column 3) *)

val all : kind list
val to_string : kind -> string
val of_string : string -> kind option

val make_backend : kind -> Pmc_sim.Machine.t -> Backend_sig.backend
val create : ?check:bool -> kind -> Pmc_sim.Machine.t -> Api.t
