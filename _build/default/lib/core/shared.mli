(** Handles for shared objects.

    The PMC annotations operate on whole shared objects of any size
    (Section V-A).  A handle carries identity, size, the lock that
    implements ≺S for the object, and the placement fields each back-end
    fills at allocation time. *)

type t = {
  id : int;
  name : string;
  size : int;                  (** bytes *)
  lock : Pmc_lock.Dlock.t;
  mutable sdram_addr : int;    (** SDRAM placement; -1 = none *)
  mutable dsm_off : int;       (** common local-memory offset; -1 = none *)
  mutable last_writer : int;   (** tile owning the newest version; -1 = none *)
}

val atomic_threshold : int ref
(** Objects of at most this many bytes are atomic for entry_ro (no
    locking).  4 = the platform word (default); 1 = the paper's
    conservative byte rule; 0 = always lock.  See DESIGN.md and the
    [ablate] bench. *)

val is_atomic_sized : t -> bool
val words : t -> int
val make : name:string -> size:int -> lock:Pmc_lock.Dlock.t -> t
val pp : Format.formatter -> t -> unit
