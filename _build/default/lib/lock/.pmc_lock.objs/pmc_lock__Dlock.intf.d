lib/lock/dlock.mli: Pmc_sim
