lib/lock/dlock.ml: Config Engine Fun Machine Pmc_sim Queue Stats
