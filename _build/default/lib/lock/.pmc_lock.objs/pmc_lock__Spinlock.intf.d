lib/lock/spinlock.mli: Pmc_sim
