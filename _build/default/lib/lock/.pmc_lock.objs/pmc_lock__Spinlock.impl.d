lib/lock/spinlock.ml: Engine Fun Machine Pmc_sim Stats
