(** Centralized test-and-set spinlock on an uncached SDRAM word — every
    poll crosses the interconnect and occupies the memory port.  The
    ablation baseline against {!Dlock}. *)

type t

val create : ?backoff:int -> Pmc_sim.Machine.t -> t
val acquire : t -> unit
val release : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
