(* Centralized test-and-set spinlock on an uncached SDRAM word.  Every poll
   crosses the interconnect and occupies the SDRAM port — the behaviour the
   asymmetric distributed lock of [Rutgers et al., IC-SAMOS 2012] was
   designed to avoid.  Kept as the ablation baseline. *)

open Pmc_sim

type t = { m : Machine.t; addr : int; backoff : int }

let create ?(backoff = 16) (m : Machine.t) : t =
  let addr = Machine.alloc_uncached m ~bytes:4 in
  Machine.poke_u32 m addr 0l;
  { m; addr; backoff }

let rec acquire t =
  let old = Machine.uncached_tas t.m t.addr in
  if old = 0l then begin
    let s = Stats.core (Machine.stats t.m) (Machine.core_id t.m) in
    s.Stats.lock_acquires <- s.Stats.lock_acquires + 1
  end
  else begin
    Engine.consume (Machine.engine t.m) Stats.Lock_stall t.backoff;
    acquire t
  end

let release t = Machine.store_u32 t.m ~shared:true t.addr 0l

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f
