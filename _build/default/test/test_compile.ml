(* Tests of the annotation tooling: the static discipline checker and the
   Table II lowering pass. *)

open Pmc_compile

let obj = Ir.obj

let check_errors name prog expected_count =
  let r = Check.check prog in
  Alcotest.(check int) name expected_count (List.length r.Check.errors)

let test_fig6_clean () =
  let r = Check.check Ir.fig6 in
  Alcotest.(check bool) "Fig. 6 passes the checker" true (Check.ok r);
  Alcotest.(check int) "no warnings" 0 (List.length r.Check.warnings)

let test_missing_fence_warning () =
  let r = Check.check Ir.fig6_missing_fence in
  Alcotest.(check bool) "still no hard errors" true (Check.ok r);
  Alcotest.(check bool) "publish-without-fence warned" true
    (List.exists
       (function Check.Publish_without_fence _ -> true | _ -> false)
       r.Check.warnings)

let test_write_outside_x () =
  let x = obj ~name:"X" ~bytes:4 in
  check_errors "write outside entry_x"
    { Ir.pname = "bad"; threads = [ [ Ir.Write x ] ] }
    1

let test_write_in_ro () =
  let x = obj ~name:"X" ~bytes:4 in
  check_errors "write in ro scope"
    {
      Ir.pname = "bad";
      threads = [ [ Ir.Entry_ro x; Ir.Write x; Ir.Exit_ro x ] ];
    }
    1

let test_read_outside () =
  let x = obj ~name:"X" ~bytes:4 in
  check_errors "read outside scope"
    { Ir.pname = "bad"; threads = [ [ Ir.Read x ] ] }
    1

let test_flush_outside () =
  let x = obj ~name:"X" ~bytes:4 in
  check_errors "flush outside x"
    { Ir.pname = "bad"; threads = [ [ Ir.Flush x ] ] }
    1;
  check_errors "flush in ro"
    {
      Ir.pname = "bad";
      threads = [ [ Ir.Entry_ro x; Ir.Flush x; Ir.Exit_ro x ] ];
    }
    1

let test_unclosed_and_unmatched () =
  let x = obj ~name:"X" ~bytes:4 in
  check_errors "unclosed scope"
    { Ir.pname = "bad"; threads = [ [ Ir.Entry_x x ] ] }
    1;
  check_errors "unmatched exit"
    { Ir.pname = "bad"; threads = [ [ Ir.Exit_x x ] ] }
    1;
  check_errors "mode mismatch"
    { Ir.pname = "bad"; threads = [ [ Ir.Entry_x x; Ir.Exit_ro x ] ] }
    2 (* bad exit + unclosed scope *)

let test_non_nested () =
  let x = obj ~name:"X" ~bytes:4 in
  let y = obj ~name:"Y" ~bytes:4 in
  (* the bad exit is reported and the scope of X then stays open: 2 errors *)
  check_errors "non-LIFO exits"
    {
      Ir.pname = "bad";
      threads =
        [ [ Ir.Entry_x x; Ir.Entry_x y; Ir.Exit_x x; Ir.Exit_x y ] ];
    }
    2

let test_reentrant () =
  let x = obj ~name:"X" ~bytes:4 in
  (* the re-entrant entry is not pushed, so the second exit is unmatched *)
  check_errors "re-entrant entry"
    {
      Ir.pname = "bad";
      threads = [ [ Ir.Entry_x x; Ir.Entry_x x; Ir.Exit_x x; Ir.Exit_x x ] ];
    }
    2

let test_loop_bodies_checked () =
  let x = obj ~name:"X" ~bytes:4 in
  check_errors "violations inside loops found"
    { Ir.pname = "bad"; threads = [ [ Ir.Loop (3, [ Ir.Write x ]) ] ] }
    1

let test_empty_scope_warning () =
  let x = obj ~name:"X" ~bytes:4 in
  let r =
    Check.check
      { Ir.pname = "w"; threads = [ [ Ir.Entry_x x; Ir.Exit_x x ] ] }
  in
  Alcotest.(check bool) "empty scope warned" true
    (List.exists
       (function Check.Empty_scope _ -> true | _ -> false)
       r.Check.warnings)

(* ---------------- lowering (Table II) ---------------- *)

let cfg = Pmc_sim.Config.default

let has_prim prims p = List.mem p prims

let test_lower_swcc () =
  let l = Lower.lower Lower.Swcc cfg Lower.A_entry_x ~bytes:64 in
  Alcotest.(check bool) "entry_x locks" true (has_prim l Lower.P_lock_acquire);
  let l = Lower.lower Lower.Swcc cfg Lower.A_exit_x ~bytes:64 in
  Alcotest.(check bool) "exit_x flushes 2 lines" true
    (has_prim l (Lower.P_cache_wb_inval 2));
  Alcotest.(check bool) "exit_x releases" true (has_prim l Lower.P_lock_release);
  let l = Lower.lower Lower.Swcc cfg Lower.A_entry_ro ~bytes:4 in
  Alcotest.(check (list string)) "atomic-sized entry_ro is free"
    [ "nop" ]
    (List.map Lower.prim_name l);
  let l = Lower.lower Lower.Swcc cfg Lower.A_flush ~bytes:128 in
  Alcotest.(check bool) "flush writes back 4 lines" true
    (has_prim l (Lower.P_cache_wb_inval 4))

let test_lower_dsm () =
  let l = Lower.lower Lower.Dsm cfg Lower.A_exit_x ~bytes:64 in
  Alcotest.(check (list string)) "DSM exit_x is lazy (release only)"
    [ "lock-release" ]
    (List.map Lower.prim_name l);
  let l = Lower.lower Lower.Dsm cfg Lower.A_flush ~bytes:64 in
  Alcotest.(check bool) "DSM flush posts to all other tiles" true
    (has_prim l (Lower.P_noc_post { words = 16; dests = cfg.cores - 1 }))

let test_lower_spm () =
  let l = Lower.lower Lower.Spm cfg Lower.A_entry_x ~bytes:64 in
  Alcotest.(check bool) "SPM entry_x copies in" true
    (has_prim l (Lower.P_copy_in 16));
  let l = Lower.lower Lower.Spm cfg Lower.A_exit_x ~bytes:64 in
  Alcotest.(check bool) "SPM exit_x copies out" true
    (has_prim l (Lower.P_copy_out 16));
  let l = Lower.lower Lower.Spm cfg Lower.A_exit_ro ~bytes:64 in
  Alcotest.(check (list string)) "SPM exit_ro discards" [ "nop" ]
    (List.map Lower.prim_name l)

let test_lower_c11 () =
  let names a b = List.map Lower.prim_name (Lower.lower Lower.C11 cfg a ~bytes:b) in
  Alcotest.(check (list string)) "C11 entry_x is a mutex lock"
    [ "mtx_lock" ] (names Lower.A_entry_x 64);
  Alcotest.(check (list string)) "C11 fence is the language fence"
    [ "atomic_thread_fence(seq_cst)" ] (names Lower.A_fence 0);
  Alcotest.(check (list string)) "C11 flush is a no-op (hardware coherence)"
    [ "nop" ] (names Lower.A_flush 64);
  Alcotest.(check (list string)) "C11 atomic-sized entry_ro is an acquire load"
    [ "atomic_load_explicit(acquire)" ] (names Lower.A_entry_ro 4)

let test_lower_nocc_flush_nullified () =
  let l = Lower.lower Lower.Nocc cfg Lower.A_flush ~bytes:64 in
  Alcotest.(check (list string)) "no-CC flushes are nullified" [ "nop" ]
    (List.map Lower.prim_name l)

let test_fence_is_free_everywhere () =
  List.iter
    (fun arch ->
      Alcotest.(check int)
        (Lower.arch_name arch ^ ": fence costs nothing (in-order cores)")
        0
        (Lower.cost arch cfg Lower.A_fence ~bytes:0))
    Lower.archs

let test_expand_counts () =
  let e = Lower.expand Lower.Swcc cfg Ir.fig6 in
  (* fig6: thread 0 has 2 entry_x/exit_x pairs; thread 1 has 1 entry_ro/
     exit_ro (in a 1-iteration loop) and 1 entry_x/exit_x *)
  let count name =
    Option.value ~default:0 (List.assoc_opt name e.Lower.prims)
  in
  Alcotest.(check int) "lock acquires" 3 (count "lock-acquire");
  Alcotest.(check int) "lock releases" 3 (count "lock-release");
  Alcotest.(check bool) "estimated overhead positive" true
    (e.Lower.est_cycles > 0)

let test_expand_scales_with_loops () =
  let x = obj ~name:"X" ~bytes:4 in
  let p n =
    {
      Ir.pname = "loop";
      threads =
        [ [ Ir.Loop (n, [ Ir.Entry_x x; Ir.Write x; Ir.Exit_x x ]) ] ];
    }
  in
  let e1 = Lower.expand Lower.Swcc cfg (p 1) in
  let e10 = Lower.expand Lower.Swcc cfg (p 10) in
  Alcotest.(check int) "cost scales linearly with trip count"
    (10 * e1.Lower.est_cycles) e10.Lower.est_cycles

(* ---------------- parser ---------------- *)

let test_parse_fig6_file () =
  match Pmc_compile.Parse.parse (Pmc_compile.Parse.print Ir.fig6) with
  | Error _ -> Alcotest.fail "print/parse of fig6 failed"
  | Ok p ->
      Alcotest.(check string) "name survives" "fig6" p.Ir.pname;
      Alcotest.(check int) "thread count" 2 (List.length p.Ir.threads);
      let r = Check.check p in
      Alcotest.(check bool) "reparsed fig6 still checks" true (Check.ok r)

let test_parse_errors () =
  let expect_err text =
    match Pmc_compile.Parse.parse text with
    | Error (_ :: _) -> ()
    | _ -> Alcotest.failf "expected a syntax error for %S" text
  in
  expect_err "bogus directive";
  expect_err "thread\n  entry_x X\n";           (* unknown object *)
  expect_err "obj X 4\nthread\n  loop 2\n  read X\n";  (* missing end *)
  expect_err "obj X 4\nobj X 4\n";              (* duplicate object *)
  expect_err "obj X notanumber\n";
  expect_err "thread\n  end\n"                  (* end outside loop *)

let test_parse_comments_and_whitespace () =
  let text =
    "# a comment\nprogram p  # trailing\nobj A 8\n\nthread\n\tentry_x A\n  write A\n  exit_x A\n"
  in
  match Pmc_compile.Parse.parse text with
  | Error e ->
      Alcotest.failf "unexpected error: %s"
        (Fmt.str "%a" Pmc_compile.Parse.pp_error (List.hd e))
  | Ok p ->
      Alcotest.(check int) "one thread" 1 (List.length p.Ir.threads);
      Alcotest.(check bool) "checks clean" true (Check.ok (Check.check p))

(* Round trip on randomly generated programs. *)
let gen_program =
  let open QCheck.Gen in
  let objs = [ Ir.obj ~name:"A" ~bytes:4; Ir.obj ~name:"B" ~bytes:64 ] in
  let obj = oneofl objs in
  let leaf =
    frequency
      [
        (2, map (fun o -> Ir.Read o) obj);
        (2, map (fun o -> Ir.Write o) obj);
        (1, return Ir.Fence);
        (1, map (fun o -> Ir.Flush o) obj);
        (1, map (fun n -> Ir.Compute n) (int_range 1 100));
      ]
  in
  let stmt =
    frequency
      [
        (6, leaf);
        (1, map2 (fun n body -> Ir.Loop (n, body)) (int_range 1 5)
             (list_size (int_range 1 3) leaf));
      ]
  in
  (* wrap random bodies in a well-formed scope so the text parses and the
     structure is non-trivial *)
  let thread =
    map
      (fun body -> [ Ir.Entry_x (List.hd objs) ] @ body @ [ Ir.Exit_x (List.hd objs) ])
      (list_size (int_range 0 6) stmt)
  in
  map
    (fun threads -> { Ir.pname = "rand"; threads })
    (list_size (int_range 1 3) thread)

let prop_parse_roundtrip =
  QCheck.Test.make ~count:100 ~name:"parse (print p) = p"
    (QCheck.make gen_program) (fun p ->
      match Pmc_compile.Parse.parse (Pmc_compile.Parse.print p) with
      | Error _ -> false
      | Ok p2 -> Pmc_compile.Parse.print p2 = Pmc_compile.Parse.print p)

let suite =
  ( "compile",
    [
      Alcotest.test_case "Fig. 6 is clean" `Quick test_fig6_clean;
      Alcotest.test_case "missing fence warning" `Quick
        test_missing_fence_warning;
      Alcotest.test_case "write outside x" `Quick test_write_outside_x;
      Alcotest.test_case "write in ro" `Quick test_write_in_ro;
      Alcotest.test_case "read outside scope" `Quick test_read_outside;
      Alcotest.test_case "flush discipline" `Quick test_flush_outside;
      Alcotest.test_case "unclosed / unmatched" `Quick
        test_unclosed_and_unmatched;
      Alcotest.test_case "non-LIFO exits" `Quick test_non_nested;
      Alcotest.test_case "re-entrant entry" `Quick test_reentrant;
      Alcotest.test_case "loops are walked" `Quick test_loop_bodies_checked;
      Alcotest.test_case "empty scope warning" `Quick
        test_empty_scope_warning;
      Alcotest.test_case "Table II: SWCC cells" `Quick test_lower_swcc;
      Alcotest.test_case "Table II: DSM cells" `Quick test_lower_dsm;
      Alcotest.test_case "Table II: SPM cells" `Quick test_lower_spm;
      Alcotest.test_case "Table II: no-CC flush nullified" `Quick
        test_lower_nocc_flush_nullified;
      Alcotest.test_case "C11 lowering target" `Quick test_lower_c11;
      Alcotest.test_case "fences are free" `Quick
        test_fence_is_free_everywhere;
      Alcotest.test_case "program expansion" `Quick test_expand_counts;
      Alcotest.test_case "expansion scales with loops" `Quick
        test_expand_scales_with_loops;
      Alcotest.test_case "parse: fig6 round trip" `Quick
        test_parse_fig6_file;
      Alcotest.test_case "parse: syntax errors" `Quick test_parse_errors;
      Alcotest.test_case "parse: comments/whitespace" `Quick
        test_parse_comments_and_whitespace;
      QCheck_alcotest.to_alcotest prop_parse_roundtrip;
    ] )
