test/test_differential.ml: Array Config List Machine Pmc Pmc_sim Printf QCheck QCheck_alcotest
