test/test_integration.ml: Alcotest Config Fmt Hashtbl History Int32 List Machine Observe Pmc Pmc_model Pmc_sim
