test/test_prng.ml: Alcotest Array Pmc_sim Prng QCheck QCheck_alcotest
