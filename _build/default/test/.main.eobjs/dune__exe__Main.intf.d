test/main.mli:
