test/test_compile.ml: Alcotest Check Fmt Ir List Lower Option Pmc_compile Pmc_sim QCheck QCheck_alcotest
