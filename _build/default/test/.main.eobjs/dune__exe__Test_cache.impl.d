test/test_cache.ml: Alcotest Bytes Cache Gen Int32 List Pmc_sim QCheck QCheck_alcotest
