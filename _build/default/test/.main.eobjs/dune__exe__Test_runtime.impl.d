test/test_runtime.ml: Alcotest Config Engine Int32 List Machine Pmc Pmc_sim Printf Stats
