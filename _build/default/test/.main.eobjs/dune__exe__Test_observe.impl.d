test/test_observe.ml: Alcotest Array Execution Gen History List Observe Op Pmc_model QCheck QCheck_alcotest
