test/test_litmus.ml: Alcotest Drf List Litmus Lprog Models Pmc_model QCheck QCheck_alcotest String
