test/test_sim.ml: Alcotest Array Config Engine List Machine Option Pmc_sim Stats
