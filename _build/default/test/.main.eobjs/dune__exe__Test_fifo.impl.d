test/test_fifo.ml: Alcotest Array Config Engine Fun Int32 List Machine Pmc Pmc_sim Printf QCheck QCheck_alcotest Stats
