test/test_lock.ml: Alcotest Config Dlock Engine List Machine Pmc_lock Pmc_sim Printf Spinlock Stats
