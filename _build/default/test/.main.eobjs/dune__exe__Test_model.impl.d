test/test_model.ml: Alcotest Array Execution Fun Gen List Observe Op Order Pmc_model QCheck QCheck_alcotest
