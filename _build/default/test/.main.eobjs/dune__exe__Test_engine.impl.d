test/test_engine.ml: Alcotest Config Engine Gen List Pmc_sim QCheck QCheck_alcotest Stats
