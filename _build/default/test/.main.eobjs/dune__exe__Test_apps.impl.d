test/test_apps.ml: Alcotest Config List Pmc Pmc_apps Pmc_sim Printf Stats
