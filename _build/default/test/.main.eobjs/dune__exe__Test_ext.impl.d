test/test_ext.ml: Alcotest Array Config Dot Execution Fun List Litmus Lprog Machine Models Op Order Pmc Pmc_lock Pmc_model Pmc_sim String
