(* Differential testing of the back-ends: random well-formed annotated
   programs are generated, executed on every memory architecture, and the
   final shared state must equal the computed expectation.

   All writes are commutative (add a thread- and step-specific delta), so
   the final state is independent of scheduling and lock acquisition
   order: any divergence is a coherence bug in a back-end, not an
   artifact of interleaving.  This is the same trick the application
   checksums use, but over machine-generated programs that poke corners
   no hand-written workload does (odd object sizes, deep scope nesting,
   flush/fence placement, read-only scopes interleaved with exclusive
   ones). *)

open Pmc_sim

let cfg = { Config.small with cores = 4 }

(* A generated program: per thread, a list of actions over [n_objs]
   shared objects. *)
type action =
  | A_rmw of int * int        (* object, delta: with_x { o[i] += delta } *)
  | A_read_scan of int        (* object: with_ro { read all words } *)
  | A_fence
  | A_flush_rmw of int * int  (* like A_rmw but with a flush before exit *)
  | A_compute of int

type gprog = { n_objs : int; obj_words : int array; threads : action list array }

let gen_gprog =
  let open QCheck.Gen in
  let* n_objs = int_range 1 4 in
  let* obj_words = array_size (return n_objs) (int_range 1 9) in
  let action =
    frequency
      [
        (4, map2 (fun o d -> A_rmw (o, d)) (int_range 0 (n_objs - 1)) (int_range 1 50));
        (2, map (fun o -> A_read_scan o) (int_range 0 (n_objs - 1)));
        (1, return A_fence);
        (2, map2 (fun o d -> A_flush_rmw (o, d)) (int_range 0 (n_objs - 1)) (int_range 1 50));
        (1, map (fun n -> A_compute n) (int_range 1 40));
      ]
  in
  let* threads = array_size (int_range 1 4) (list_size (int_range 1 10) action) in
  return { n_objs; obj_words; threads }

(* Expected final state: initial zeros plus every delta, once, applied to
   every word of the object. *)
let expectation (g : gprog) : int array array =
  let state = Array.map (fun w -> Array.make w 0) g.obj_words in
  Array.iter
    (fun actions ->
      List.iter
        (fun a ->
          match a with
          | A_rmw (o, d) | A_flush_rmw (o, d) ->
              Array.iteri (fun i v -> state.(o).(i) <- v + d) state.(o)
          | A_read_scan _ | A_fence | A_compute _ -> ())
        actions)
    g.threads;
  state

let run_on (g : gprog) kind : int array array =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create kind m in
  let objs =
    Array.mapi
      (fun i words ->
        Pmc.Api.alloc_words api ~name:(Printf.sprintf "g%d" i) ~words)
      g.obj_words
  in
  Array.iteri
    (fun t actions ->
      Machine.spawn m ~core:(t mod cfg.Config.cores) (fun () ->
          List.iter
            (fun a ->
              match a with
              | A_rmw (o, d) ->
                  Pmc.Api.with_x api objs.(o) (fun () ->
                      for i = 0 to g.obj_words.(o) - 1 do
                        let v = Pmc.Api.get_int api objs.(o) i in
                        Pmc.Api.set_int api objs.(o) i (v + d)
                      done)
              | A_flush_rmw (o, d) ->
                  Pmc.Api.with_x api objs.(o) (fun () ->
                      for i = 0 to g.obj_words.(o) - 1 do
                        let v = Pmc.Api.get_int api objs.(o) i in
                        Pmc.Api.set_int api objs.(o) i (v + d)
                      done;
                      Pmc.Api.flush api objs.(o))
              | A_read_scan o ->
                  Pmc.Api.with_ro api objs.(o) (fun () ->
                      for i = 0 to g.obj_words.(o) - 1 do
                        ignore (Pmc.Api.get api objs.(o) i)
                      done)
              | A_fence -> Pmc.Api.fence api
              | A_compute n -> Machine.instr m n)
            actions))
    g.threads;
  Machine.run m;
  Array.mapi
    (fun o words ->
      Array.init words (fun i -> Pmc.Api.peek_int api objs.(o) i))
    g.obj_words

let prop_backend kind =
  QCheck.Test.make ~count:60
    ~name:("differential: random programs on " ^ Pmc.Backends.to_string kind)
    (QCheck.make gen_gprog)
    (fun g -> run_on g kind = expectation g)

let suite =
  ( "differential",
    List.map (fun k -> QCheck_alcotest.to_alcotest (prop_backend k))
      Pmc.Backends.all )
