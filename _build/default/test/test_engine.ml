(* Tests of the discrete-event engine: virtual time, interleaving order,
   events, determinism and the livelock watchdog. *)

open Pmc_sim

let cfg = { Config.small with cores = 4 }

let test_time_accumulates () =
  let e = Engine.create cfg in
  let finished = ref (-1) in
  Engine.spawn e ~core:0 (fun () ->
      Engine.consume e Stats.Busy 10;
      Engine.consume e Stats.Busy 5;
      finished := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "core time = sum of consumes" 15 !finished

let test_interleaving_by_time () =
  let e = Engine.create cfg in
  let log = ref [] in
  let mark tag = log := tag :: !log in
  Engine.spawn e ~core:0 (fun () ->
      Engine.consume e Stats.Busy 10;
      mark "a10";
      Engine.consume e Stats.Busy 20;
      mark "a30");
  Engine.spawn e ~core:1 (fun () ->
      Engine.consume e Stats.Busy 5;
      mark "b5";
      Engine.consume e Stats.Busy 20;
      mark "b25");
  Engine.run e;
  Alcotest.(check (list string)) "events in time order"
    [ "b5"; "a10"; "b25"; "a30" ] (List.rev !log)

let test_tie_break_deterministic () =
  (* equal times resolve by spawn sequence; two identical runs match *)
  let run () =
    let e = Engine.create cfg in
    let log = ref [] in
    for c = 0 to 3 do
      Engine.spawn e ~core:c (fun () ->
          Engine.consume e Stats.Busy 7;
          log := c :: !log)
    done;
    Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list int)) "deterministic tie-break" (run ()) (run ());
  Alcotest.(check (list int)) "spawn order wins ties" [ 0; 1; 2; 3 ] (run ())

let test_events_fire_at_time () =
  let e = Engine.create cfg in
  let seen = ref (-1) in
  Engine.at e ~time:42 (fun () -> seen := 42);
  Engine.spawn e ~core:0 (fun () ->
      Engine.consume e Stats.Busy 50;
      Alcotest.(check int) "event fired before task resumed at t=50" 42 !seen);
  Engine.run e

let test_event_vs_task_order () =
  (* an event at the exact resume time of a task fires first if scheduled
     earlier *)
  let e = Engine.create cfg in
  let applied = ref false in
  Engine.at e ~time:10 (fun () -> applied := true);
  Engine.spawn e ~core:0 (fun () ->
      Engine.consume e Stats.Busy 10;
      Alcotest.(check bool) "event at t=10 already applied" true !applied);
  Engine.run e

let test_stats_attribution () =
  let e = Engine.create cfg in
  Engine.spawn e ~core:2 (fun () ->
      Engine.consume e Stats.Busy 10;
      Engine.consume e Stats.Shared_read_stall 30;
      Engine.consume e Stats.Lock_stall 5);
  Engine.run e;
  let s = Stats.core (Engine.stats e) 2 in
  Alcotest.(check int) "busy" 10 (Stats.get s Stats.Busy);
  Alcotest.(check int) "shared read" 30 (Stats.get s Stats.Shared_read_stall);
  Alcotest.(check int) "lock" 5 (Stats.get s Stats.Lock_stall);
  Alcotest.(check int) "total" 45 (Stats.total s);
  Alcotest.(check int) "other cores untouched" 0
    (Stats.total (Stats.core (Engine.stats e) 0))

let test_watchdog () =
  let e = Engine.create { cfg with max_cycles = 1000 } in
  Engine.spawn e ~core:0 (fun () ->
      while true do
        Engine.consume e Stats.Busy 100
      done);
  Alcotest.check_raises "watchdog fires" (Engine.Watchdog 1100) (fun () ->
      Engine.run e)

let test_multiple_tasks_one_core () =
  let e = Engine.create cfg in
  let order = ref [] in
  Engine.spawn e ~core:0 (fun () ->
      Engine.consume e Stats.Busy 5;
      order := `A :: !order);
  Engine.spawn e ~core:0 (fun () ->
      Engine.consume e Stats.Busy 3;
      order := `B :: !order);
  Engine.run e;
  Alcotest.(check bool) "both tasks ran, shorter first" true
    (List.rev !order = [ `B; `A ])

let test_spawn_from_task () =
  let e = Engine.create cfg in
  let child_ran = ref false in
  Engine.spawn e ~core:0 (fun () ->
      Engine.consume e Stats.Busy 5;
      Engine.spawn e ~core:1 (fun () -> child_ran := true));
  Engine.run e;
  Alcotest.(check bool) "spawned child ran" true !child_ran

let prop_consume_sums =
  QCheck.Test.make ~count:100 ~name:"core time equals sum of consumes"
    QCheck.(list_of_size Gen.(int_range 1 30) (QCheck.int_range 0 50))
    (fun xs ->
      let e = Engine.create cfg in
      let final = ref 0 in
      Engine.spawn e ~core:0 (fun () ->
          List.iter (fun n -> Engine.consume e Stats.Busy n) xs;
          final := Engine.now e);
      Engine.run e;
      !final = List.fold_left ( + ) 0 xs)

let suite =
  ( "engine",
    [
      Alcotest.test_case "time accumulates" `Quick test_time_accumulates;
      Alcotest.test_case "interleaving by time" `Quick
        test_interleaving_by_time;
      Alcotest.test_case "deterministic tie-break" `Quick
        test_tie_break_deterministic;
      Alcotest.test_case "events fire at their time" `Quick
        test_events_fire_at_time;
      Alcotest.test_case "event before task at same time" `Quick
        test_event_vs_task_order;
      Alcotest.test_case "stats attribution" `Quick test_stats_attribution;
      Alcotest.test_case "watchdog" `Quick test_watchdog;
      Alcotest.test_case "two tasks on one core" `Quick
        test_multiple_tasks_one_core;
      Alcotest.test_case "spawn from within a task" `Quick
        test_spawn_from_task;
      QCheck_alcotest.to_alcotest prop_consume_sums;
    ] )
