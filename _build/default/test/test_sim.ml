(* Tests of the machine: address decoding, timed access paths, SDRAM
   contention, the write-only NoC (posted writes, per-link FIFO, drain),
   the instruction-stream model, allocation, and the atomic test-and-set. *)

open Pmc_sim

let cfg = { Config.small with cores = 4 }

let run1 m f =
  let result = ref None in
  Machine.spawn m ~core:0 (fun () -> result := Some (f ()));
  Machine.run m;
  Option.get !result

let test_decode () =
  let m = Machine.create cfg in
  (match Machine.decode m 0 with
  | Machine.Cached_sdram 0 -> ()
  | _ -> Alcotest.fail "low address is cached SDRAM");
  (match Machine.decode m (cfg.Config.sdram_bytes - 4) with
  | Machine.Uncached_sdram _ -> ()
  | _ -> Alcotest.fail "high address is uncached SDRAM");
  match Machine.decode m (Machine.local_addr m ~tile:2 ~off:100) with
  | Machine.Local { tile = 2; off = 100 } -> ()
  | _ -> Alcotest.fail "local address decodes to tile 2"

let test_alloc_alignment () =
  let m = Machine.create cfg in
  let a = Machine.alloc_cached m ~bytes:5 in
  let b = Machine.alloc_cached m ~bytes:5 in
  Alcotest.(check int) "line aligned" 0 (a mod cfg.Config.line_bytes);
  Alcotest.(check bool) "objects never share a line" true
    (b - a >= cfg.Config.line_bytes)

let test_cached_load_timing () =
  let m = Machine.create cfg in
  let addr = Machine.alloc_cached m ~bytes:64 in
  Machine.poke_u32 m addr 17l;
  let t_miss, t_hit, v =
    run1 m (fun () ->
        let t0 = Machine.now m in
        let v = Machine.load_u32 m ~shared:true addr in
        let t1 = Machine.now m in
        ignore (Machine.load_u32 m ~shared:true addr);
        let t2 = Machine.now m in
        (t1 - t0, t2 - t1, v))
  in
  Alcotest.(check int32) "value read" 17l v;
  Alcotest.(check bool) "miss slower than hit" true (t_miss > t_hit);
  Alcotest.(check int) "hit costs the hit latency"
    cfg.Config.dcache_hit_cycles t_hit

let test_uncached_timing () =
  let m = Machine.create cfg in
  let addr = Machine.alloc_uncached m ~bytes:4 in
  let dt =
    run1 m (fun () ->
        let t0 = Machine.now m in
        ignore (Machine.load_u32 m ~shared:true addr);
        Machine.now m - t0)
  in
  Alcotest.(check bool) "uncached read pays the SDRAM latency" true
    (dt >= cfg.Config.sdram_word_cycles)

let test_sdram_contention () =
  (* many cores issuing uncached reads at once queue on the port *)
  let m = Machine.create cfg in
  let addr = Machine.alloc_uncached m ~bytes:4 in
  let times = Array.make 4 0 in
  for c = 0 to 3 do
    Machine.spawn m ~core:c (fun () ->
        ignore (Machine.load_u32 m ~shared:true addr);
        times.(c) <- Machine.now m)
  done;
  Machine.run m;
  let sorted = Array.copy times in
  Array.sort compare sorted;
  Alcotest.(check bool) "later requesters wait longer" true
    (sorted.(3) > sorted.(0))

let test_local_mem_access () =
  let m = Machine.create cfg in
  let v =
    run1 m (fun () ->
        let a = Machine.local_addr m ~tile:0 ~off:16 in
        Machine.store_u32 m ~shared:true a 5l;
        Machine.load_u32 m ~shared:true a)
  in
  Alcotest.(check int32) "local memory read back" 5l v

let test_remote_read_forbidden () =
  let m = Machine.create cfg in
  let exn = ref false in
  Machine.spawn m ~core:0 (fun () ->
      try ignore (Machine.load_u32 m ~shared:true
                    (Machine.local_addr m ~tile:1 ~off:0))
      with Machine.Remote_read _ -> exn := true);
  Machine.run m;
  Alcotest.(check bool) "write-only interconnect rejects remote reads" true
    !exn

let test_noc_posted_write () =
  let m = Machine.create cfg in
  let dst_addr = Machine.local_addr m ~tile:1 ~off:0 in
  Machine.spawn m ~core:0 (fun () ->
      let t0 = Machine.now m in
      Machine.store_u32 m ~shared:true dst_addr 9l;
      let injection = Machine.now m - t0 in
      (* posted: the sender pays only the injection cost *)
      Alcotest.(check bool) "posted write is cheap for the sender" true
        (injection < cfg.Config.noc_base_cycles);
      (* and the data has not landed yet *)
      Alcotest.(check int32) "not yet visible" 0l (Machine.peek_u32 m dst_addr);
      Machine.noc_drain m;
      Alcotest.(check int32) "visible after drain" 9l
        (Machine.peek_u32 m dst_addr));
  Machine.run m

let test_noc_fifo_per_link () =
  (* two posted writes to the same destination land in issue order, even
     with different sizes *)
  let m = Machine.create cfg in
  Machine.spawn m ~core:0 (fun () ->
      Machine.noc_push m ~dst:1 ~src_off:0 ~dst_off:0 ~len:32;
      Machine.store_u32 m ~shared:true (Machine.local_addr m ~tile:1 ~off:0)
        1l;
      Machine.noc_drain m;
      (* the single-word write issued second must not be overwritten by
         the earlier burst *)
      Alcotest.(check int32) "second write wins" 1l
        (Machine.peek_u32 m (Machine.local_addr m ~tile:1 ~off:0)));
  Machine.run m

let test_raw_remote_write_reorders () =
  (* the Fig. 1 machine: a slow write issued first arrives after a fast
     write issued second *)
  let m = Machine.create cfg in
  let order = ref [] in
  Machine.spawn m ~core:0 (fun () ->
      Machine.store_u32_remote_raw m ~dst:1 ~off:0 ~latency:50 1l;
      Machine.store_u32_remote_raw m ~dst:1 ~off:4 ~latency:5 2l);
  Machine.spawn m ~core:1 (fun () ->
      for _ = 1 to 40 do
        let a = Machine.peek_u32 m (Machine.local_addr m ~tile:1 ~off:0) in
        let b = Machine.peek_u32 m (Machine.local_addr m ~tile:1 ~off:4) in
        order := (a, b) :: !order;
        Engine.idle (Machine.engine m) 2
      done);
  Machine.run m;
  Alcotest.(check bool) "flag seen before data at some point" true
    (List.exists (fun (a, b) -> a = 0l && b = 2l) !order)

let test_instr_stream () =
  let m = Machine.create cfg in
  Machine.set_code m ~core:0 ~footprint:(4 * 1024) ~jump_prob:0.0;
  Machine.spawn m ~core:0 (fun () -> Machine.instr m 1000);
  Machine.run m;
  let s = Stats.core (Machine.stats m) 0 in
  Alcotest.(check int) "instructions counted" 1000 s.Stats.instructions;
  Alcotest.(check int) "1 busy cycle per instruction" 1000
    (Stats.get s Stats.Busy);
  Alcotest.(check bool) "cold i-cache missed" true (s.Stats.icache_misses > 0);
  (* second pass over the same footprint: all hits *)
  let misses_before = s.Stats.icache_misses in
  Machine.spawn m ~core:0 (fun () -> Machine.instr m 1000);
  Machine.run m;
  Alcotest.(check bool) "warm i-cache barely misses" true
    (s.Stats.icache_misses - misses_before < misses_before / 4 + 2)

let test_private_data () =
  let m = Machine.create cfg in
  let v =
    run1 m (fun () ->
        Machine.private_store m 10 77l;
        Machine.private_load m 10)
  in
  Alcotest.(check int32) "private data round-trips" 77l v

let test_private_data_per_core () =
  let m = Machine.create cfg in
  Machine.spawn m ~core:0 (fun () -> Machine.private_store m 0 1l);
  Machine.spawn m ~core:1 (fun () ->
      Engine.consume (Machine.engine m) Stats.Busy 100;
      Alcotest.(check int32) "cores have distinct private arenas" 0l
        (Machine.private_load m 0));
  Machine.run m

let test_tas_atomic () =
  let m = Machine.create cfg in
  let addr = Machine.alloc_uncached m ~bytes:4 in
  let winners = ref 0 in
  for c = 0 to 3 do
    Machine.spawn m ~core:c (fun () ->
        if Machine.uncached_tas m addr = 0l then incr winners)
  done;
  Machine.run m;
  Alcotest.(check int) "exactly one winner" 1 !winners

let test_flush_timing_counted () =
  let m = Machine.create cfg in
  let addr = Machine.alloc_cached m ~bytes:64 in
  Machine.spawn m ~core:0 (fun () ->
      Machine.store_u32 m ~shared:true addr 1l;
      Machine.wb_inval_range m ~addr ~len:64);
  Machine.run m;
  let s = Stats.core (Machine.stats m) 0 in
  Alcotest.(check bool) "flush cycles attributed" true
    (Stats.get s Stats.Flush_overhead > 0);
  Alcotest.(check int) "flush counted" 1 s.Stats.flushes

let test_dsm_alloc_common_offset () =
  let m = Machine.create cfg in
  let o1 = Machine.alloc_dsm m ~bytes:12 in
  let o2 = Machine.alloc_dsm m ~bytes:8 in
  Alcotest.(check bool) "offsets grow" true (o2 > o1);
  Alcotest.(check int) "word aligned" 0 (o2 mod 4)

let test_spm_stack () =
  let m = Machine.create cfg in
  let base = Machine.spm_mark m ~core:0 in
  let a = Machine.spm_alloc m ~core:0 ~bytes:100 in
  let b = Machine.spm_alloc m ~core:0 ~bytes:100 in
  Alcotest.(check bool) "stack grows" true (b > a);
  Machine.spm_release m ~core:0 base;
  let c = Machine.spm_alloc m ~core:0 ~bytes:100 in
  Alcotest.(check int) "release rewinds" a c

let suite =
  ( "machine",
    [
      Alcotest.test_case "address decode" `Quick test_decode;
      Alcotest.test_case "allocation alignment" `Quick test_alloc_alignment;
      Alcotest.test_case "cached load timing" `Quick test_cached_load_timing;
      Alcotest.test_case "uncached timing" `Quick test_uncached_timing;
      Alcotest.test_case "SDRAM contention" `Quick test_sdram_contention;
      Alcotest.test_case "local memory" `Quick test_local_mem_access;
      Alcotest.test_case "remote reads forbidden" `Quick
        test_remote_read_forbidden;
      Alcotest.test_case "NoC posted write + drain" `Quick
        test_noc_posted_write;
      Alcotest.test_case "NoC per-link FIFO" `Quick test_noc_fifo_per_link;
      Alcotest.test_case "raw remote writes reorder (Fig. 1)" `Quick
        test_raw_remote_write_reorders;
      Alcotest.test_case "instruction stream + I-cache" `Quick
        test_instr_stream;
      Alcotest.test_case "private data" `Quick test_private_data;
      Alcotest.test_case "private arenas are per-core" `Quick
        test_private_data_per_core;
      Alcotest.test_case "test-and-set atomicity" `Quick test_tas_atomic;
      Alcotest.test_case "flush accounting" `Quick test_flush_timing_counted;
      Alcotest.test_case "DSM allocation" `Quick test_dsm_alloc_common_offset;
      Alcotest.test_case "SPM stack allocator" `Quick test_spm_stack;
    ] )
