(* Tests of the PMC runtime: the annotation API's discipline checking, the
   message-passing pattern on every back-end, back-end-specific semantics
   (SWCC staleness without flushes, DSM replication, SPM staging), and the
   Fig. 1 broken-flag demonstration. *)

open Pmc_sim

let cfg = { Config.small with cores = 4 }

let with_api kind f =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create kind m in
  f m api

let run_core0 m f =
  Machine.spawn m ~core:0 f;
  Machine.run m

let all_backends = Pmc.Backends.all

(* ---------------- discipline ---------------- *)

let expect_discipline_error name f =
  with_api Pmc.Backends.Seqcst (fun m api ->
      let raised = ref false in
      run_core0 m (fun () ->
          try f api with Pmc.Api.Discipline_error _ -> raised := true);
      Alcotest.(check bool) name true !raised)

let test_write_outside_scope () =
  expect_discipline_error "write outside entry_x rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.set api o 0 1l)

let test_write_in_ro_scope () =
  expect_discipline_error "write in read-only scope rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.with_ro api o (fun () -> Pmc.Api.set api o 0 1l))

let test_read_outside_scope () =
  expect_discipline_error "read outside any scope rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      ignore (Pmc.Api.get api o 0))

let test_flush_outside_x () =
  expect_discipline_error "flush outside entry_x rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.flush api o);
  expect_discipline_error "flush in ro scope rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.with_ro api o (fun () -> Pmc.Api.flush api o))

let test_unmatched_exit () =
  expect_discipline_error "exit without entry rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.exit_x api o)

let test_non_nested_exit () =
  expect_discipline_error "non-LIFO exits rejected" (fun api ->
      let a = Pmc.Api.alloc_words api ~name:"a" ~words:1 in
      let b = Pmc.Api.alloc_words api ~name:"b" ~words:1 in
      Pmc.Api.entry_x api a;
      Pmc.Api.entry_x api b;
      Pmc.Api.exit_x api a)

let test_reentrant_entry () =
  expect_discipline_error "re-entrant entry rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.entry_x api o;
      Pmc.Api.entry_x api o)

let test_ro_upgrade_rejected () =
  expect_discipline_error "ro -> x upgrade rejected" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.entry_ro api o;
      Pmc.Api.entry_x api o)

let test_out_of_bounds () =
  expect_discipline_error "word index out of bounds" (fun api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:2 in
      Pmc.Api.with_x api o (fun () -> ignore (Pmc.Api.get api o 2)))

let test_unsafe_mode_skips_checks () =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create ~check:false Pmc.Backends.Seqcst m in
  let ok = ref false in
  run_core0 m (fun () ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      Pmc.Api.set api o 0 1l;
      (* no scope, no exception *)
      ok := true);
  Alcotest.(check bool) "unsafe mode permits undisciplined code" true !ok

(* ---------------- cross-backend semantics ---------------- *)

(* Basic write-then-read visibility through the lock on every back-end. *)
let test_visibility_via_lock () =
  List.iter
    (fun kind ->
      with_api kind (fun m api ->
          let o = Pmc.Api.alloc_words api ~name:"o" ~words:8 in
          let seen = ref 0l in
          Machine.spawn m ~core:0 (fun () ->
              Pmc.Api.with_x api o (fun () ->
                  for w = 0 to 7 do
                    Pmc.Api.set api o w (Int32.of_int (w + 1))
                  done));
          Machine.spawn m ~core:1 (fun () ->
              Engine.consume (Machine.engine m) Stats.Busy 10_000;
              Pmc.Api.with_x api o (fun () -> seen := Pmc.Api.get api o 7));
          Machine.run m;
          Alcotest.(check int32)
            (Pmc.Backends.to_string kind ^ ": reader sees writer's data")
            8l !seen))
    all_backends

(* Message passing (Fig. 6) delivers the payload on every back-end. *)
let test_msg_all_backends () =
  List.iter
    (fun kind ->
      with_api kind (fun m api ->
          let data = Pmc.Api.alloc_words api ~name:"X" ~words:4 in
          let flag = Pmc.Api.alloc_words api ~name:"flag" ~words:1 in
          let got = ref [||] in
          Machine.spawn m ~core:0 (fun () ->
              Pmc.Msg.send api ~data ~flag [| 42l; 43l; 44l; 45l |]);
          Machine.spawn m ~core:2 (fun () ->
              got := Pmc.Msg.recv api ~data ~flag);
          Machine.run m;
          Alcotest.(check (array int32))
            (Pmc.Backends.to_string kind ^ ": payload intact")
            [| 42l; 43l; 44l; 45l |] !got))
    all_backends

(* SWCC specifics: a dirty exclusive scope leaves nothing stale — the
   reader on another core re-fetches after its own entry. *)
let test_swcc_exit_flushes () =
  with_api Pmc.Backends.Swcc (fun m api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      run_core0 m (fun () ->
          Pmc.Api.with_x api o (fun () -> Pmc.Api.set api o 0 5l));
      (* after exit_x the SDRAM must hold the value (write-back done) *)
      Alcotest.(check int32) "exit_x wrote back to SDRAM" 5l
        (Machine.peek_u32 m o.Pmc.Shared.sdram_addr))

(* SWCC without the protocol would be stale: write into the cache via raw
   machine access, observe SDRAM unchanged. *)
let test_swcc_staleness_without_protocol () =
  with_api Pmc.Backends.Swcc (fun m api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      run_core0 m (fun () ->
          Machine.store_u32 m ~shared:true o.Pmc.Shared.sdram_addr 9l);
      Alcotest.(check int32)
        "without exit_x the write stays in the cache (stale SDRAM)" 0l
        (Machine.peek_u32 m o.Pmc.Shared.sdram_addr))

(* DSM specifics: flush replicates to all tiles' local memories. *)
let test_dsm_flush_replicates () =
  with_api Pmc.Backends.Dsm (fun m api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:2 in
      run_core0 m (fun () ->
          Pmc.Api.with_x api o (fun () ->
              Pmc.Api.set api o 0 11l;
              Pmc.Api.set api o 1 22l;
              Pmc.Api.flush api o);
          Machine.noc_drain m);
      for tile = 0 to cfg.Config.cores - 1 do
        let a =
          Machine.local_addr m ~tile ~off:o.Pmc.Shared.dsm_off
        in
        Alcotest.(check int32)
          (Printf.sprintf "replica on tile %d" tile)
          11l (Machine.peek_u32 m a)
      done)

(* DSM lazy release: without flush, the data moves only on the next
   acquire (pulled by the new owner). *)
let test_dsm_lazy_release () =
  with_api Pmc.Backends.Dsm (fun m api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      let seen = ref 0l in
      Machine.spawn m ~core:0 (fun () ->
          Pmc.Api.with_x api o (fun () -> Pmc.Api.set api o 0 7l));
      Machine.spawn m ~core:3 (fun () ->
          Engine.consume (Machine.engine m) Stats.Busy 5_000;
          (* before acquiring, the local replica is still the old value *)
          let raw =
            Machine.peek_u32 m
              (Machine.local_addr m ~tile:3 ~off:o.Pmc.Shared.dsm_off)
          in
          Alcotest.(check int32) "replica stale before acquire" 0l raw;
          Pmc.Api.with_x api o (fun () -> seen := Pmc.Api.get api o 0));
      Machine.run m;
      Alcotest.(check int32) "acquire pulled the version" 7l !seen)

(* SPM specifics: reads inside a scope hit the scratch-pad; exit_x copies
   back; exit_ro discards modifications-free. *)
let test_spm_staging () =
  with_api Pmc.Backends.Spm (fun m api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:4 in
      Pmc.Api.poke api o 2 33l;
      run_core0 m (fun () ->
          Pmc.Api.with_ro api o (fun () ->
              Alcotest.(check int32) "staged copy readable" 33l
                (Pmc.Api.get api o 2));
          Pmc.Api.with_x api o (fun () -> Pmc.Api.set api o 2 44l));
      Alcotest.(check int32) "exit_x copied back" 44l (Pmc.Api.peek api o 2))

let test_spm_access_outside_scope_fails () =
  with_api Pmc.Backends.Spm (fun m api ->
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:1 in
      let api_unsafe = Pmc.Backends.create ~check:false Pmc.Backends.Spm m in
      ignore api_unsafe;
      let raised = ref false in
      run_core0 m (fun () ->
          try ignore (Pmc.Api.get api o 0)
          with Pmc.Api.Discipline_error _ -> raised := true);
      Alcotest.(check bool) "SPM access outside scope rejected" true !raised)

(* ---------------- Fig. 1 ---------------- *)

let test_broken_flag () =
  let m = Machine.create cfg in
  let o =
    Pmc.Msg.Broken.run m ~src:0 ~dst:1 ~latency_x:10 ~latency_flag:1
      ~fixed:false
  in
  Alcotest.(check bool) "asymmetric latencies break the program" false
    (Pmc.Msg.Broken.ok o);
  Alcotest.(check int32) "stale value observed" 0l o.Pmc.Msg.Broken.observed

let test_broken_flag_fixed () =
  let m = Machine.create cfg in
  let o =
    Pmc.Msg.Broken.run m ~src:0 ~dst:1 ~latency_x:10 ~latency_flag:1
      ~fixed:true
  in
  Alcotest.(check bool) "the PMC drain repairs it" true
    (Pmc.Msg.Broken.ok o)

let test_broken_flag_symmetric_ok () =
  (* with symmetric latencies the FIFO-free machine happens to work *)
  let m = Machine.create cfg in
  let o =
    Pmc.Msg.Broken.run m ~src:0 ~dst:1 ~latency_x:1 ~latency_flag:1
      ~fixed:false
  in
  Alcotest.(check bool) "symmetric latencies mask the bug" true
    (Pmc.Msg.Broken.ok o)

let suite =
  ( "runtime",
    [
      Alcotest.test_case "write outside scope" `Quick
        test_write_outside_scope;
      Alcotest.test_case "write in ro scope" `Quick test_write_in_ro_scope;
      Alcotest.test_case "read outside scope" `Quick test_read_outside_scope;
      Alcotest.test_case "flush discipline" `Quick test_flush_outside_x;
      Alcotest.test_case "unmatched exit" `Quick test_unmatched_exit;
      Alcotest.test_case "non-nested exit" `Quick test_non_nested_exit;
      Alcotest.test_case "re-entrant entry" `Quick test_reentrant_entry;
      Alcotest.test_case "ro upgrade rejected" `Quick test_ro_upgrade_rejected;
      Alcotest.test_case "bounds check" `Quick test_out_of_bounds;
      Alcotest.test_case "unsafe mode" `Quick test_unsafe_mode_skips_checks;
      Alcotest.test_case "visibility via lock (all back-ends)" `Quick
        test_visibility_via_lock;
      Alcotest.test_case "message passing (all back-ends)" `Quick
        test_msg_all_backends;
      Alcotest.test_case "SWCC: exit_x writes back" `Quick
        test_swcc_exit_flushes;
      Alcotest.test_case "SWCC: stale without protocol" `Quick
        test_swcc_staleness_without_protocol;
      Alcotest.test_case "DSM: flush replicates" `Quick
        test_dsm_flush_replicates;
      Alcotest.test_case "DSM: lazy release" `Quick test_dsm_lazy_release;
      Alcotest.test_case "SPM: staging" `Quick test_spm_staging;
      Alcotest.test_case "SPM: outside scope rejected" `Quick
        test_spm_access_outside_scope_fails;
      Alcotest.test_case "Fig. 1: broken" `Quick test_broken_flag;
      Alcotest.test_case "Fig. 1: fixed" `Quick test_broken_flag_fixed;
      Alcotest.test_case "Fig. 1: symmetric is lucky" `Quick
        test_broken_flag_symmetric_ok;
    ] )
