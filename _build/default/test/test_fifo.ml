(* Tests of the Fig. 9 multi-reader/multi-writer FIFO: per-reader order,
   broadcast delivery, flow control (bounded depth), multiple writers,
   and a randomized end-to-end property on every back-end. *)

open Pmc_sim

let cfg = { Config.small with cores = 6 }

let setup kind =
  let m = Machine.create cfg in
  let api = Pmc.Backends.create kind m in
  (m, api)

let test_single_reader_order () =
  List.iter
    (fun kind ->
      let m, api = setup kind in
      let fifo =
        Pmc.Fifo.create api ~name:"f" ~depth:4 ~elem_words:1 ~readers:1
      in
      let got = ref [] in
      Machine.spawn m ~core:0 (fun () ->
          for i = 1 to 30 do
            Pmc.Fifo.push fifo [| Int32.of_int i |]
          done);
      Machine.spawn m ~core:1 (fun () ->
          for _ = 1 to 30 do
            got := (Pmc.Fifo.pop fifo ~reader:0).(0) :: !got
          done);
      Machine.run m;
      Alcotest.(check (list int32))
        (Pmc.Backends.to_string kind ^ ": in-order, lossless")
        (List.init 30 (fun i -> Int32.of_int (i + 1)))
        (List.rev !got))
    Pmc.Backends.all

let test_broadcast_to_all_readers () =
  let m, api = setup Pmc.Backends.Dsm in
  let readers = 3 in
  let fifo =
    Pmc.Fifo.create api ~name:"f" ~depth:2 ~elem_words:2 ~readers
  in
  let got = Array.make readers [] in
  Machine.spawn m ~core:0 (fun () ->
      for i = 1 to 12 do
        Pmc.Fifo.push fifo [| Int32.of_int i; Int32.of_int (i * i) |]
      done);
  for r = 0 to readers - 1 do
    Machine.spawn m ~core:(r + 1) (fun () ->
        for _ = 1 to 12 do
          got.(r) <- (Pmc.Fifo.pop fifo ~reader:r) :: got.(r)
        done)
  done;
  Machine.run m;
  for r = 0 to readers - 1 do
    Alcotest.(check int)
      (Printf.sprintf "reader %d got all elements" r)
      12
      (List.length got.(r));
    List.iteri
      (fun i d ->
        let v = 12 - i in
        Alcotest.(check int32) "element order" (Int32.of_int v) d.(0);
        Alcotest.(check int32) "element payload" (Int32.of_int (v * v)) d.(1))
      got.(r)
  done

let test_flow_control () =
  (* the writer cannot run more than depth ahead of the slowest reader *)
  let m, api = setup Pmc.Backends.Seqcst in
  let depth = 3 in
  let fifo =
    Pmc.Fifo.create api ~name:"f" ~depth ~elem_words:1 ~readers:1
  in
  let pushed = ref 0 and popped = ref 0 in
  let max_lead = ref 0 in
  Machine.spawn m ~core:0 (fun () ->
      for i = 1 to 20 do
        Pmc.Fifo.push fifo [| Int32.of_int i |];
        incr pushed;
        max_lead := max !max_lead (!pushed - !popped)
      done);
  Machine.spawn m ~core:1 (fun () ->
      for _ = 1 to 20 do
        ignore (Pmc.Fifo.pop fifo ~reader:0);
        incr popped;
        (* a slow reader *)
        Engine.consume (Machine.engine m) Stats.Busy 500
      done);
  Machine.run m;
  Alcotest.(check bool)
    (Printf.sprintf "writer lead bounded by depth+1 (saw %d)" !max_lead)
    true
    (!max_lead <= depth + 1)

let test_multiple_writers () =
  let m, api = setup Pmc.Backends.Swcc in
  let fifo =
    Pmc.Fifo.create api ~name:"f" ~depth:4 ~elem_words:2 ~readers:1
  in
  let per_writer = 10 in
  for w = 0 to 2 do
    Machine.spawn m ~core:w (fun () ->
        for i = 1 to per_writer do
          Pmc.Fifo.push fifo [| Int32.of_int w; Int32.of_int i |]
        done)
  done;
  let got = ref [] in
  Machine.spawn m ~core:3 (fun () ->
      for _ = 1 to 3 * per_writer do
        got := Pmc.Fifo.pop fifo ~reader:0 :: !got
      done);
  Machine.run m;
  Alcotest.(check int) "nothing lost or duplicated" (3 * per_writer)
    (List.length !got);
  (* per-writer subsequences stay in order *)
  for w = 0 to 2 do
    let seq =
      List.rev_map (fun d -> d) !got
      |> List.filter (fun d -> d.(0) = Int32.of_int w)
      |> List.map (fun d -> d.(1))
    in
    Alcotest.(check (list int32))
      (Printf.sprintf "writer %d order preserved" w)
      (List.init per_writer (fun i -> Int32.of_int (i + 1)))
      seq
  done

let test_element_integrity () =
  (* multi-word elements never tear: each element is (i, 2i, 3i, i^2) *)
  let m, api = setup Pmc.Backends.Dsm in
  let fifo =
    Pmc.Fifo.create api ~name:"f" ~depth:2 ~elem_words:4 ~readers:2
  in
  let bad = ref 0 in
  Machine.spawn m ~core:0 (fun () ->
      for i = 1 to 16 do
        Pmc.Fifo.push fifo
          [|
            Int32.of_int i; Int32.of_int (2 * i); Int32.of_int (3 * i);
            Int32.of_int (i * i);
          |]
      done);
  for r = 0 to 1 do
    Machine.spawn m ~core:(1 + r) (fun () ->
        for _ = 1 to 16 do
          let d = Pmc.Fifo.pop fifo ~reader:r in
          let i = Int32.to_int d.(0) in
          if
            d.(1) <> Int32.of_int (2 * i)
            || d.(2) <> Int32.of_int (3 * i)
            || d.(3) <> Int32.of_int (i * i)
          then incr bad
        done)
  done;
  Machine.run m;
  Alcotest.(check int) "no torn elements" 0 !bad

(* Randomized: arbitrary (depth, element size, reader count, item count)
   on a random back-end — every reader sees exactly the pushed sequence. *)
let prop_fifo =
  let gen =
    QCheck.(
      quad (int_range 1 5) (int_range 1 4) (int_range 1 3) (int_range 1 25))
  in
  QCheck.Test.make ~count:30 ~name:"fifo delivers exactly, in order, to all"
    gen (fun (depth, elem_words, readers, items) ->
      let kind =
        List.nth Pmc.Backends.all ((depth + elem_words + items) mod 5)
      in
      let m, api = setup kind in
      let fifo = Pmc.Fifo.create api ~name:"f" ~depth ~elem_words ~readers in
      let got = Array.make readers [] in
      Machine.spawn m ~core:0 (fun () ->
          for i = 1 to items do
            Pmc.Fifo.push fifo
              (Array.init elem_words (fun w -> Int32.of_int ((i * 10) + w)))
          done);
      for r = 0 to readers - 1 do
        Machine.spawn m ~core:(1 + (r mod (cfg.Config.cores - 1)))
          (fun () ->
            for _ = 1 to items do
              got.(r) <- Pmc.Fifo.pop fifo ~reader:r :: got.(r)
            done)
      done;
      Machine.run m;
      Array.for_all
        (fun l ->
          let l = List.rev l in
          List.length l = items
          && List.for_all2
               (fun i d ->
                 Array.for_all2
                   (fun w v -> Int32.of_int ((i * 10) + w) = v)
                   (Array.init elem_words Fun.id)
                   d)
               (List.init items (fun i -> i + 1))
               l)
        got)

let suite =
  ( "fifo",
    [
      Alcotest.test_case "single reader order (all back-ends)" `Quick
        test_single_reader_order;
      Alcotest.test_case "broadcast to all readers" `Quick
        test_broadcast_to_all_readers;
      Alcotest.test_case "flow control" `Quick test_flow_control;
      Alcotest.test_case "multiple writers" `Quick test_multiple_writers;
      Alcotest.test_case "element integrity" `Quick test_element_integrity;
      QCheck_alcotest.to_alcotest prop_fifo;
    ] )
