(* Application integration tests: every workload runs on every back-end
   and must produce the sequential reference checksum — the portability
   claim of the paper, checked end to end.  Also: determinism across
   repeated runs, scaling of core counts, and the performance relations
   the case studies report. *)

open Pmc_sim

let small_scale (a : Pmc_apps.Runner.app) =
  match a.Pmc_apps.Runner.name with
  | "motion_est" -> 3
  | "radiosity" -> 48
  | "streaming" -> 8
  | _ -> 16

let cfg = { Config.default with cores = 8 }

let test_all_apps_all_backends () =
  List.iter
    (fun (a : Pmc_apps.Runner.app) ->
      List.iter
        (fun backend ->
          let r =
            Pmc_apps.Runner.run ~cfg a ~backend ~scale:(small_scale a)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s matches the sequential reference"
               a.Pmc_apps.Runner.name
               (Pmc.Backends.to_string backend))
            true (Pmc_apps.Runner.ok r))
        Pmc.Backends.all)
    Pmc_apps.Registry.all

let test_determinism () =
  (* the simulation is fully deterministic: identical wall time and
     checksum run to run *)
  List.iter
    (fun (a : Pmc_apps.Runner.app) ->
      let r1 = Pmc_apps.Runner.run ~cfg a ~backend:Pmc.Backends.Swcc
          ~scale:(small_scale a) in
      let r2 = Pmc_apps.Runner.run ~cfg a ~backend:Pmc.Backends.Swcc
          ~scale:(small_scale a) in
      Alcotest.(check int)
        (a.Pmc_apps.Runner.name ^ ": deterministic wall time")
        r1.Pmc_apps.Runner.wall r2.Pmc_apps.Runner.wall;
      Alcotest.(check int64)
        (a.Pmc_apps.Runner.name ^ ": deterministic checksum")
        r1.Pmc_apps.Runner.checksum r2.Pmc_apps.Runner.checksum)
    [ Pmc_apps.Radiosity_like.app; Pmc_apps.Kernels.Histogram.app ]

let test_core_count_invariance () =
  (* radiosity's checksum is core-count independent (commutative updates,
     dynamic task queue) *)
  List.iter
    (fun cores ->
      let cfg = { Config.default with cores } in
      let r =
        Pmc_apps.Runner.run ~cfg Pmc_apps.Radiosity_like.app
          ~backend:Pmc.Backends.Swcc ~scale:48
      in
      Alcotest.(check bool)
        (Printf.sprintf "radiosity correct on %d cores" cores)
        true (Pmc_apps.Runner.ok r))
    [ 1; 2; 4; 16; 32 ]

(* The Fig. 8 relation: SWCC beats no-CC on all three SPLASH-2-like
   kernels, utilization rises, and flush overhead stays small. *)
let test_fig8_relation () =
  let cfg32 = Config.default in
  List.iter
    (fun ((a : Pmc_apps.Runner.app), scale) ->
      let nocc = Pmc_apps.Runner.run ~cfg:cfg32 a ~backend:Pmc.Backends.Nocc ~scale in
      let swcc = Pmc_apps.Runner.run ~cfg:cfg32 a ~backend:Pmc.Backends.Swcc ~scale in
      Alcotest.(check bool)
        (a.Pmc_apps.Runner.name ^ ": both correct")
        true
        (Pmc_apps.Runner.ok nocc && Pmc_apps.Runner.ok swcc);
      Alcotest.(check bool)
        (a.Pmc_apps.Runner.name ^ ": SWCC improves execution time")
        true
        (swcc.Pmc_apps.Runner.wall < nocc.Pmc_apps.Runner.wall);
      Alcotest.(check bool)
        (a.Pmc_apps.Runner.name ^ ": SWCC improves utilization")
        true
        (Stats.utilization swcc.Pmc_apps.Runner.summary
        > Stats.utilization nocc.Pmc_apps.Runner.summary);
      Alcotest.(check bool)
        (a.Pmc_apps.Runner.name ^ ": flush overhead small (< 6%)")
        true
        (Stats.fraction swcc.Pmc_apps.Runner.summary Stats.Flush_overhead
        < 0.06))
    [
      (Pmc_apps.Radiosity_like.app, 256);
      (Pmc_apps.Raytrace_like.app, 64);
      (Pmc_apps.Volrend_like.app, 64);
    ]

(* The Fig. 10 relation: on a small-cache tile, SPM beats SWCC beats
   no-CC for motion estimation. *)
let test_fig10_relation () =
  let cfg =
    { Config.default with dcache_sets = 64; dcache_ways = 2; line_bytes = 8 }
  in
  let run backend =
    Pmc_apps.Runner.run ~cfg Pmc_apps.Motion_est.app ~backend ~scale:4
  in
  let nocc = run Pmc.Backends.Nocc in
  let swcc = run Pmc.Backends.Swcc in
  let spm = run Pmc.Backends.Spm in
  Alcotest.(check bool) "all correct" true
    (Pmc_apps.Runner.ok nocc && Pmc_apps.Runner.ok swcc
    && Pmc_apps.Runner.ok spm);
  Alcotest.(check bool)
    (Printf.sprintf "SPM (%d) beats SWCC (%d)" spm.Pmc_apps.Runner.wall
       swcc.Pmc_apps.Runner.wall)
    true
    (spm.Pmc_apps.Runner.wall < swcc.Pmc_apps.Runner.wall);
  Alcotest.(check bool) "SWCC beats no-CC" true
    (swcc.Pmc_apps.Runner.wall < nocc.Pmc_apps.Runner.wall)

(* The Sec. VI-B context: the FIFO pipeline runs fastest on DSM, where
   polling stays in local memories. *)
let test_streaming_dsm_advantage () =
  let cfg = { Config.default with cores = 8 } in
  let run backend =
    Pmc_apps.Runner.run ~cfg Pmc_apps.Streaming.app ~backend ~scale:16
  in
  let dsm = run Pmc.Backends.Dsm in
  let nocc = run Pmc.Backends.Nocc in
  Alcotest.(check bool) "both correct" true
    (Pmc_apps.Runner.ok dsm && Pmc_apps.Runner.ok nocc);
  Alcotest.(check bool)
    (Printf.sprintf "DSM (%d) beats uncached shared memory (%d)"
       dsm.Pmc_apps.Runner.wall nocc.Pmc_apps.Runner.wall)
    true
    (dsm.Pmc_apps.Runner.wall < nocc.Pmc_apps.Runner.wall)

let suite =
  ( "apps",
    [
      Alcotest.test_case "all apps x all back-ends" `Slow
        test_all_apps_all_backends;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "core-count invariance" `Slow
        test_core_count_invariance;
      Alcotest.test_case "Fig. 8 relation" `Slow test_fig8_relation;
      Alcotest.test_case "Fig. 10 relation" `Slow test_fig10_relation;
      Alcotest.test_case "streaming on DSM" `Slow
        test_streaming_dsm_advantage;
    ] )
