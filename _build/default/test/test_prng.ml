(* Determinism and distribution sanity of the simulation PRNG. *)

open Pmc_sim

let test_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_int_bounds () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Prng.int out of bounds"
  done

let test_float_bounds () =
  let g = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.float g in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "Prng.float out of bounds"
  done

let test_split_independent () =
  let g = Prng.create 5 in
  let a = Prng.split g and b = Prng.split g in
  Alcotest.(check bool) "split streams differ" false
    (Prng.next_int64 a = Prng.next_int64 b)

let test_rough_uniformity () =
  let g = Prng.create 6 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Prng.int g 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 30 then
        Alcotest.failf "bucket %d skewed: %d" i c)
    buckets

let prop_bool_prob =
  QCheck.Test.make ~count:20 ~name:"Prng.bool tracks its probability"
    QCheck.(float_range 0.1 0.9)
    (fun p ->
      let g = Prng.create 11 in
      let hits = ref 0 in
      let n = 5000 in
      for _ = 1 to n do
        if Prng.bool g p then incr hits
      done;
      abs_float ((float_of_int !hits /. float_of_int n) -. p) < 0.05)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed independence" `Quick test_different_seeds;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "split independence" `Quick test_split_independent;
      Alcotest.test_case "rough uniformity" `Quick test_rough_uniformity;
      QCheck_alcotest.to_alcotest prop_bool_prob;
    ] )
