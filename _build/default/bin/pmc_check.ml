(* pmc_check — the annotation tooling as a command-line front-end: parse
   annotated-program files, run the static discipline checker and the
   Table II lowering pass.

     pmc_check                      # check + lower the built-in examples
     pmc_check --file prog.pmc      # check + lower a program file
     pmc_check --table              # the lowering table per object size *)

open Cmdliner

let builtin = [ Pmc_compile.Ir.fig6; Pmc_compile.Ir.fig6_missing_fence ]

let check_program p =
  let r = Pmc_compile.Check.check p in
  Pmc_compile.Report.pp_check Fmt.stdout p r;
  Pmc_compile.Report.pp_program_expansion Fmt.stdout Pmc_sim.Config.default
    p;
  Fmt.pr "@.";
  Pmc_compile.Check.ok r

let check_builtin () = List.iter (fun p -> ignore (check_program p)) builtin

let check_file path =
  match Pmc_compile.Parse.parse_file path with
  | Ok p -> if check_program p then 0 else 1
  | Error errs ->
      List.iter (fun e -> Fmt.epr "%s: %a@." path Pmc_compile.Parse.pp_error e) errs;
      2

let table sizes =
  List.iter
    (fun bytes ->
      Pmc_compile.Report.pp_lowering_table Fmt.stdout Pmc_sim.Config.default
        ~bytes;
      Fmt.pr "@.")
    sizes

let main show_table file =
  if show_table then begin table [ 1; 4; 64; 1024 ]; 0 end
  else
    match file with
    | Some path -> check_file path
    | None ->
        check_builtin ();
        0

let cmd =
  Cmd.v
    (Cmd.info "pmc_check" ~doc:"Static PMC annotation checking & lowering")
    Term.(
      const main
      $ Arg.(value & flag & info [ "table" ] ~doc:"Print lowering tables.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "file"; "f" ] ~doc:"Check an annotated program file."))

let () = exit (Cmd.eval' cmd)
