(* pmc_demo — run any annotated application on any memory-architecture
   back-end of the simulated many-core SoC and report the Fig. 8-style
   statistics.

     pmc_demo --app raytrace --backend swcc --cores 32 --scale 256
     pmc_demo --list *)

open Cmdliner
open Pmc_sim

let run_app app_name backend_name cores scale breakdown verify =
  match Pmc_apps.Registry.find app_name with
  | None ->
      Fmt.epr "unknown app %S; try --list@." app_name;
      exit 1
  | Some app -> (
      match Pmc.Backends.of_string backend_name with
      | None ->
          Fmt.epr "unknown backend %S (seqcst|nocc|swcc|dsm|spm)@."
            backend_name;
          exit 1
      | Some backend ->
          let cfg = { Config.default with cores } in
          let r = Pmc_apps.Runner.run ~cfg app ~backend ~scale in
          Fmt.pr "%a" Pmc_apps.Runner.pp_result r;
          if breakdown then begin
            let s = r.Pmc_apps.Runner.summary in
            Fmt.pr "%a" Stats.pp_summary s;
            Fmt.pr "  dcache: %d hits / %d misses; icache misses: %d@."
              s.Stats.dcache_hits s.Stats.dcache_misses s.Stats.icache_misses;
            Fmt.pr "  locks: %d acquires, %d transfers; noc writes: %d; \
                    flushes: %d@."
              s.Stats.lock_acquires s.Stats.lock_transfers s.Stats.noc_writes
              s.Stats.flushes
          end;
          if verify && not (Pmc_apps.Runner.ok r) then begin
            Fmt.epr "checksum mismatch!@.";
            exit 2
          end)

let list_apps () =
  Fmt.pr "applications:@.";
  List.iter (fun n -> Fmt.pr "  %s@." n) Pmc_apps.Registry.names;
  Fmt.pr "back-ends:@.";
  List.iter
    (fun k -> Fmt.pr "  %s@." (Pmc.Backends.to_string k))
    Pmc.Backends.all

let app_t =
  Arg.(value & opt string "raytrace" & info [ "app"; "a" ] ~doc:"Application to run.")

let backend_t =
  Arg.(
    value & opt string "swcc"
    & info [ "backend"; "b" ]
        ~doc:"Memory architecture: seqcst, nocc, swcc, dsm or spm.")

let cores_t =
  Arg.(value & opt int 32 & info [ "cores"; "c" ] ~doc:"Number of tiles.")

let scale_t =
  Arg.(value & opt int 64 & info [ "scale"; "s" ] ~doc:"Workload scale.")

let breakdown_t =
  Arg.(value & flag & info [ "breakdown" ] ~doc:"Print the stall breakdown.")

let verify_t =
  Arg.(
    value & opt bool true
    & info [ "verify" ] ~doc:"Fail if the checksum mismatches.")

let list_t = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List apps.")

let main app backend cores scale breakdown verify list =
  if list then list_apps ()
  else run_app app backend cores scale breakdown verify

let cmd =
  Cmd.v
    (Cmd.info "pmc_demo" ~doc:"Run PMC-annotated apps on simulated SoCs")
    Term.(
      const main $ app_t $ backend_t $ cores_t $ scale_t $ breakdown_t
      $ verify_t $ list_t)

let () = exit (Cmd.eval cmd)
