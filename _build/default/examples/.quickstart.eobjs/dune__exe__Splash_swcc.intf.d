examples/splash_swcc.mli:
