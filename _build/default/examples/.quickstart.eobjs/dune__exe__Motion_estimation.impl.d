examples/motion_estimation.ml: Config Fmt List Pmc Pmc_apps Pmc_sim
