examples/fifo_stream.mli:
