examples/broken_flag.ml: Config Fmt List Machine Pmc Pmc_sim
