examples/quickstart.mli:
