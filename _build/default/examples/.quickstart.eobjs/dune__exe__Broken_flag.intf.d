examples/broken_flag.mli:
