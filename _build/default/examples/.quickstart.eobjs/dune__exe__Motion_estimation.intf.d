examples/motion_estimation.mli:
