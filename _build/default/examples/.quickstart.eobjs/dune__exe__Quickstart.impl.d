examples/quickstart.ml: Config Engine Fmt List Machine Pmc Pmc_sim
