examples/splash_swcc.ml: Fmt List Pmc Pmc_apps Pmc_sim Stats
