examples/fifo_stream.ml: Array Config Engine Fmt Int32 List Machine Pmc Pmc_sim
