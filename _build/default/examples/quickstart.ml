(* Quickstart: the annotated message-passing pattern of Fig. 6, written
   once and run on every memory architecture.

   The application below publishes a payload under an exclusive scope,
   fences, then raises a flag and flushes it; the receiver polls the flag
   read-only, fences, and acquires the payload.  Because all the required
   orderings are explicit, swapping the back-end — software cache
   coherency, distributed shared memory, scratch-pads — is literally one
   line: "porting applications to hardware with another memory model
   becomes just a compiler setting".

     dune exec examples/quickstart.exe *)

open Pmc_sim

let run_on backend =
  (* a 4-tile SoC: in-order cores, non-coherent caches, write-only NoC *)
  let machine = Machine.create { Config.small with cores = 4 } in
  let api = Pmc.Backends.create backend machine in

  (* shared objects: a 4-word payload and a 1-word flag *)
  let data = Pmc.Api.alloc_words api ~name:"X" ~words:4 in
  let flag = Pmc.Api.alloc_words api ~name:"flag" ~words:1 in

  (* producer on core 0 — Fig. 6, process 1 *)
  Machine.spawn machine ~core:0 (fun () ->
      Pmc.Api.entry_x api data;
      for i = 0 to 3 do
        Pmc.Api.set_int api data i (42 + i)
      done;
      Pmc.Api.fence api;
      Pmc.Api.exit_x api data;
      Pmc.Api.entry_x api flag;
      Pmc.Api.set_int api flag 0 1;
      Pmc.Api.flush api flag;  (* make the flag visible soon *)
      Pmc.Api.exit_x api flag);

  (* consumer on core 3 — Fig. 6, process 2 *)
  let received = ref [] in
  Machine.spawn machine ~core:3 (fun () ->
      ignore (Pmc.Api.poll_until api flag 0 (fun v -> v = 1l));
      Pmc.Api.fence api;
      Pmc.Api.with_x api data (fun () ->
          for i = 3 downto 0 do
            received := Pmc.Api.get_int api data i :: !received
          done));

  Machine.run machine;
  Fmt.pr "%-8s received %a in %d cycles@."
    (Pmc.Backends.to_string backend)
    Fmt.(list ~sep:comma int)
    !received
    (Engine.wall_time (Machine.engine machine))

let () =
  Fmt.pr "Fig. 6 message passing, same source on every architecture:@.";
  List.iter run_on Pmc.Backends.all
