(* The Fig. 8 experiment in miniature: the three SPLASH-2-like kernels on
   the 32-core SoC, with shared data uncached ('no CC') and with the
   transparent software-cache-coherency protocol ('SWCC'), printing the
   stall breakdown the paper's figure plots.

     dune exec examples/splash_swcc.exe *)

open Pmc_sim

let () =
  Fmt.pr
    "SPLASH-2-like kernels on 32 cores: uncached shared data vs software \
     cache coherency@.@.";
  List.iter
    (fun ((app : Pmc_apps.Runner.app), scale) ->
      let nocc = Pmc_apps.Runner.run app ~backend:Pmc.Backends.Nocc ~scale in
      let swcc = Pmc_apps.Runner.run app ~backend:Pmc.Backends.Swcc ~scale in
      assert (Pmc_apps.Runner.ok nocc && Pmc_apps.Runner.ok swcc);
      let show label (r : Pmc_apps.Runner.result) =
        let s = r.Pmc_apps.Runner.summary in
        Fmt.pr
          "  %-5s wall %8d cycles | util %5.1f%% | shared-read %5.1f%% | \
           I-cache %5.1f%% | flush %4.2f%%@."
          label r.Pmc_apps.Runner.wall
          (100.0 *. Stats.utilization s)
          (100.0 *. Stats.fraction s Stats.Shared_read_stall)
          (100.0 *. Stats.fraction s Stats.Icache_stall)
          (100.0 *. Stats.fraction s Stats.Flush_overhead)
      in
      Fmt.pr "%s:@." app.Pmc_apps.Runner.name;
      show "noCC" nocc;
      show "SWCC" swcc;
      Fmt.pr "  -> SWCC improves execution time by %.0f%%@.@."
        (100.0
        *. (1.0
           -. float_of_int swcc.Pmc_apps.Runner.wall
              /. float_of_int nocc.Pmc_apps.Runner.wall)))
    [
      (Pmc_apps.Radiosity_like.app, 512);
      (Pmc_apps.Raytrace_like.app, 128);
      (Pmc_apps.Volrend_like.app, 128);
    ];
  Fmt.pr
    "paper: 22%% mean improvement; RADIOSITY utilization 38%% -> 70%%; \
     flush overhead 0.66%% / 0.00%% / 0.01%%@."
