(* Fig. 9 in action: a multiple-reader, multiple-writer FIFO streaming
   video-ish macroblocks across tiles on the distributed-shared-memory
   architecture (Section VI-B).

   Two producers push work packets; three consumers each receive *every*
   packet (the FIFO is a broadcast FIFO: the writer waits until all
   readers took a slot before reusing it).  On the DSM back-end the read
   and write pointers "are only polled from local memory, which is fast
   and does not influence the execution of other processors" — compare
   the wall-clock against the uncached-shared-memory run printed last.

     dune exec examples/fifo_stream.exe *)

open Pmc_sim

let producers = 2
let consumers = 3
let packets_per_producer = 24

let run backend =
  let machine = Machine.create { Config.default with cores = 8 } in
  let api = Pmc.Backends.create backend machine in
  let fifo =
    Pmc.Fifo.create api ~name:"stream" ~depth:4 ~elem_words:4
      ~readers:consumers
  in
  for p = 0 to producers - 1 do
    Machine.spawn machine ~core:p (fun () ->
        for i = 1 to packets_per_producer do
          (* a "macroblock": producer id, sequence number, 2 payload words *)
          Pmc.Fifo.push fifo
            [|
              Int32.of_int p; Int32.of_int i; Int32.of_int (i * 3);
              Int32.of_int (i * 5);
            |];
          Machine.instr machine 50
        done)
  done;
  let sums = Array.make consumers 0 in
  let last_seq = Array.make_matrix consumers producers 0 in
  let in_order = ref true in
  for c = 0 to consumers - 1 do
    Machine.spawn machine ~core:(producers + c) (fun () ->
        for _ = 1 to producers * packets_per_producer do
          let pkt = Pmc.Fifo.pop fifo ~reader:c in
          let p = Int32.to_int pkt.(0) and seq = Int32.to_int pkt.(1) in
          if seq <= last_seq.(c).(p) then in_order := false;
          last_seq.(c).(p) <- seq;
          sums.(c) <- sums.(c) + Int32.to_int pkt.(2) + Int32.to_int pkt.(3);
          Machine.instr machine 80
        done)
  done;
  Machine.run machine;
  let expect =
    producers * (packets_per_producer * (packets_per_producer + 1) / 2) * 8
  in
  Fmt.pr
    "%-8s %3d packets -> %d consumers, per-producer order kept: %b, sums \
     %a (expect %d each), %d cycles@."
    (Pmc.Backends.to_string backend)
    (producers * packets_per_producer)
    consumers !in_order
    Fmt.(array ~sep:comma int)
    sums expect
    (Engine.wall_time (Machine.engine machine))

let () =
  Fmt.pr "Broadcast FIFO streaming (Fig. 9), %d writers x %d readers:@."
    producers consumers;
  List.iter run [ Pmc.Backends.Dsm; Pmc.Backends.Swcc; Pmc.Backends.Nocc ]
