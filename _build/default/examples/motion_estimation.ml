(* Fig. 10 in action: full-search motion estimation with scoped shared
   objects on the scratch-pad architecture (Section VI-C).

   Each worker takes a block from the work queue, opens read-only scopes
   on the search window and the current block (the OCaml equivalent of
   the C++ ScopeRO of Fig. 10 — entry in the opening, staged SPM copy
   transparently behind [Api.get], discard on exit), runs the SAD search
   and publishes the motion vector under an exclusive scope.

   The same code runs on every architecture; on a MicroBlaze-like tile
   (narrow 8-byte cache lines) the SPM staging wins clearly.

     dune exec examples/motion_estimation.exe *)

open Pmc_sim

(* A MicroBlaze-ish tile: small D-cache with 8-byte lines. *)
let cfg =
  { Config.default with
    cores = 16; dcache_sets = 64; dcache_ways = 2; line_bytes = 8 }

let blocks = 6

let () =
  Fmt.pr
    "Full-search motion estimation: %d blocks, %dx%d window, %dx%d block, \
     %d candidates@."
    blocks Pmc_apps.Motion_est.window_dim Pmc_apps.Motion_est.window_dim
    Pmc_apps.Motion_est.block_dim Pmc_apps.Motion_est.block_dim
    (Pmc_apps.Motion_est.candidates * Pmc_apps.Motion_est.candidates);
  let results =
    List.map
      (fun backend ->
        let r =
          Pmc_apps.Runner.run ~cfg Pmc_apps.Motion_est.app ~backend
            ~scale:blocks
        in
        assert (Pmc_apps.Runner.ok r);
        (backend, r.Pmc_apps.Runner.wall))
      [ Pmc.Backends.Spm; Pmc.Backends.Swcc; Pmc.Backends.Nocc ]
  in
  let spm = List.assoc Pmc.Backends.Spm results in
  List.iter
    (fun (b, wall) ->
      Fmt.pr "  %-8s %10d cycles  (%.2fx SPM)@."
        (Pmc.Backends.to_string b)
        wall
        (float_of_int wall /. float_of_int spm))
    results;
  (* show that the vectors are the planted ones *)
  Fmt.pr "@.motion vectors (block -> (dx, dy), planted values):@.";
  for b = 0 to blocks - 1 do
    let dx, dy = Pmc_apps.Motion_est.true_vector ~block:b in
    Fmt.pr "  block %d -> (%d, %d)@." b dx dy
  done
