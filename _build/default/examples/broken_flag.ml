(* Fig. 1 live: a Sequentially-Consistent-correct program breaking on an
   architecture with two memories of different write latency — and the
   PMC repair.

   Process 1 writes X = 42 (slow path, 10 cycles) and then flag = 1 (fast
   path, 1 cycle) into process 2's local memory.  Process 2 polls the
   flag and then reads X.  Because the flag overtakes the data, process 2
   reads stale X = 0.  "Tracking down this bug is non-trivial by looking
   at the source code" — here it reproduces deterministically.

   The PMC approach makes the ordering requirement explicit; the
   implementation inserts the equivalent of the paper's "read of X
   between the writes" (a drain of the posted write), and the program is
   correct at any latency.

     dune exec examples/broken_flag.exe *)

open Pmc_sim

let () =
  Fmt.pr "The Fig. 1 program on a dual-memory machine:@.@.";
  Fmt.pr "  Process 1:        Process 2:@.";
  Fmt.pr "    X = 42;           while (flag != 1) sleep();@.";
  Fmt.pr "    flag = 1;         print(X);@.@.";
  List.iter
    (fun (latency_x, latency_flag) ->
      let raw =
        let m = Machine.create { Config.small with cores = 2 } in
        Pmc.Msg.Broken.run m ~src:0 ~dst:1 ~latency_x ~latency_flag
          ~fixed:false
      in
      let fixed =
        let m = Machine.create { Config.small with cores = 2 } in
        Pmc.Msg.Broken.run m ~src:0 ~dst:1 ~latency_x ~latency_flag
          ~fixed:true
      in
      Fmt.pr
        "latency X=%2d flag=%2d:  unannotated prints %2ld %s   with PMC \
         prints %2ld %s@."
        latency_x latency_flag raw.Pmc.Msg.Broken.observed
        (if Pmc.Msg.Broken.ok raw then "(ok)    " else "(BROKEN)")
        fixed.Pmc.Msg.Broken.observed
        (if Pmc.Msg.Broken.ok fixed then "(ok)    " else "(BROKEN)"))
    [ (1, 1); (2, 1); (10, 1); (50, 1); (10, 8) ];
  Fmt.pr
    "@.The write of X is initiated first, yet every observer that trusts \
     the flag@.sees stale data: the hardware guarantees no ordering \
     between the two writes.@."
