(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations DESIGN.md calls out.

     fig1    — the broken flag program vs. write-latency asymmetry (Fig. 1)
     models  — outcome sets per memory model (Section IV-E's comparisons)
     table2  — annotation lowering per architecture: estimated & measured
     fig8    — execution-time breakdown, no-CC vs SWCC, 3 kernels (Fig. 8)
     fig9    — multi-reader/multi-writer FIFO throughput (Fig. 9 / VI-B)
     fig10   — motion estimation: SPM vs SWCC vs no-CC (Fig. 10 / VI-C)
     scaling — weak-scaling efficiency up to 128 cores (Sec. VI-A's
               scalability motivation)
     ablate  — cache-geometry sweep, lock comparison, entry_ro rule,
               lazy vs eager release
     micro   — Bechamel micro-benchmarks of the core machinery

   Absolute numbers come from a simulator, not the authors' FPGA; the
   *shape* (who wins, by roughly what factor) is what reproduces.  Paper
   targets are printed next to each measurement.  Run with section names
   as arguments to select a subset. *)

open Pmc_sim

let section name =
  Fmt.pr "@.========================================================@.";
  Fmt.pr "== %s@." name;
  Fmt.pr "========================================================@."

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(* ------------------------------------------------------------------ *)

module Fig1 = struct
  (* Fig. 1: the flag program on a machine where the data memory is
     farther away than the flag memory.  Without PMC the reader observes
     stale data as soon as the latency gap exceeds the polling time;
     the PMC drain always repairs it. *)
  let run () =
    section "Fig. 1 — SC-correct program on a dual-memory machine";
    Fmt.pr "%-14s %-10s %-10s %-10s@." "latency(X)" "lat(flag)" "raw"
      "PMC-fixed";
    List.iter
      (fun lx ->
        let go fixed =
          let m = Machine.create { Config.small with cores = 2 } in
          let o =
            Pmc.Msg.Broken.run m ~src:0 ~dst:1 ~latency_x:lx ~latency_flag:1
              ~fixed
          in
          if Pmc.Msg.Broken.ok o then "ok"
          else Printf.sprintf "BROKEN(%ld)" o.Pmc.Msg.Broken.observed
        in
        Fmt.pr "%-14d %-10d %-10s %-10s@." lx 1 (go false) (go true))
      [ 1; 2; 4; 8; 16; 32; 64 ];
    Fmt.pr
      "paper: the program breaks whenever the data write is slower than \
       the flag write; annotations make it correct on any machine.@."
end

(* ------------------------------------------------------------------ *)

module Models_cmp = struct
  let run () =
    section "Section IV-E — outcome sets per memory model (litmus)";
    List.iter
      (fun p ->
        List.iter
          (fun r -> Fmt.pr "%a@." Pmc_model.Litmus.pp_result r)
          (Pmc_model.Litmus.compare_models p);
        Fmt.pr "@.")
      [
        Pmc_model.Lprog.mp_plain;
        Pmc_model.Lprog.mp_fence;
        Pmc_model.Lprog.mp_annotated;
        Pmc_model.Lprog.mp_annotated_nofence;
        Pmc_model.Lprog.sb;
        Pmc_model.Lprog.exclusive_fig4;
      ];
    Fmt.pr "strength chain SC ⊆ PC ⊆ CC ⊆ Slow: %b (paper: Section II)@."
      (Pmc_model.Litmus.strength_chain_holds
         [
           Pmc_model.Lprog.mp_plain; Pmc_model.Lprog.sb;
           Pmc_model.Lprog.coherence_1w;
         ]);
    Fmt.pr
      "PMC(annotated) == SC on DRF programs: %b (paper: Section IV-E)@."
      (Pmc_model.Drf.sc_equivalent Pmc_model.Lprog.locked_exchange);
    Fmt.pr
      "note the STUCK state of the fence-less Fig. 6 under PMC: the \
       acquire hoisted above the polling loop deadlocks the publisher — \
       the hazard the paper's line-11 fence prevents (EC, which keeps \
       sync in program order, has none).@."
end

(* ------------------------------------------------------------------ *)

module Table2 = struct
  (* The lowering table (estimated) plus *measured* per-annotation costs:
     a single core exercising each annotation on an idle machine. *)
  let measure kind =
    let m = Machine.create { Config.default with cores = 2 } in
    let api = Pmc.Backends.create kind m in
    let o = Pmc.Api.alloc_words api ~name:"o" ~words:16 in
    let costs = ref [] in
    Machine.spawn m ~core:0 (fun () ->
        let time f =
          let t0 = Machine.now m in
          f ();
          Machine.now m - t0
        in
        let ex = time (fun () -> Pmc.Api.entry_x api o) in
        (* touch the object so exit has something to write back *)
        Pmc.Api.set api o 0 1l;
        let fl = time (fun () -> Pmc.Api.flush api o) in
        let xx = time (fun () -> Pmc.Api.exit_x api o) in
        let er = time (fun () -> Pmc.Api.entry_ro api o) in
        let xr = time (fun () -> Pmc.Api.exit_ro api o) in
        let fe = time (fun () -> Pmc.Api.fence api) in
        costs := [ ("entry_x", ex); ("exit_x", xx); ("entry_ro", er);
                   ("exit_ro", xr); ("fence", fe); ("flush", fl) ]);
    Machine.run m;
    !costs

  let run () =
    section "Table II — annotation lowering and measured cost (64 B object)";
    Pmc_compile.Report.pp_lowering_table Fmt.stdout Config.default ~bytes:64;
    Fmt.pr "@.measured cycles on an idle machine (64 B object):@.";
    Fmt.pr "%-10s" "";
    List.iter
      (fun k -> Fmt.pr " %8s" (Pmc.Backends.to_string k))
      Pmc.Backends.all;
    Fmt.pr "@.";
    let per_backend = List.map (fun k -> (k, measure k)) Pmc.Backends.all in
    List.iter
      (fun ann ->
        Fmt.pr "%-10s" ann;
        List.iter
          (fun (_, costs) -> Fmt.pr " %8d" (List.assoc ann costs))
          per_backend;
        Fmt.pr "@.")
      [ "entry_x"; "exit_x"; "entry_ro"; "exit_ro"; "fence"; "flush" ];
    Fmt.pr "paper: fences cost nothing on in-order cores; exits carry the \
            coherence work.@."
end

(* ------------------------------------------------------------------ *)

module Fig8 = struct
  let apps =
    [
      (Pmc_apps.Radiosity_like.app, 1024);
      (Pmc_apps.Raytrace_like.app, 256);
      (Pmc_apps.Volrend_like.app, 256);
    ]

  let breakdown (r : Pmc_apps.Runner.result) =
    let s = r.Pmc_apps.Runner.summary in
    let f c = 100.0 *. Stats.fraction s c in
    ( f Stats.Busy,
      f Stats.Private_read_stall,
      f Stats.Shared_read_stall,
      f Stats.Write_stall,
      f Stats.Icache_stall,
      f Stats.Flush_overhead )

  let run () =
    section "Fig. 8 — execution time breakdown: no CC vs SWCC, 32 cores";
    Fmt.pr "%-10s %-6s %9s %8s %6s %6s %6s %6s %7s %7s@." "app" "setup"
      "wall(cyc)" "norm(%)" "busy%" "priv%" "shar%" "wr%" "icache%"
      "flush%";
    let improvements = ref [] in
    List.iter
      (fun ((app : Pmc_apps.Runner.app), scale) ->
        let nocc =
          Pmc_apps.Runner.run app ~backend:Pmc.Backends.Nocc ~scale
        in
        let swcc =
          Pmc_apps.Runner.run app ~backend:Pmc.Backends.Swcc ~scale
        in
        assert (Pmc_apps.Runner.ok nocc && Pmc_apps.Runner.ok swcc);
        let print label (r : Pmc_apps.Runner.result) =
          let busy, priv, shar, wr, ic, fl = breakdown r in
          Fmt.pr "%-10s %-6s %9d %8.1f %6.1f %6.1f %6.1f %6.1f %7.1f %7.2f@."
            app.Pmc_apps.Runner.name label r.Pmc_apps.Runner.wall
            (pct r.Pmc_apps.Runner.wall nocc.Pmc_apps.Runner.wall)
            busy priv shar wr ic fl
        in
        print "noCC" nocc;
        print "SWCC" swcc;
        improvements :=
          (100.0
          -. pct swcc.Pmc_apps.Runner.wall nocc.Pmc_apps.Runner.wall)
          :: !improvements)
      apps;
    let mean =
      List.fold_left ( +. ) 0.0 !improvements
      /. float_of_int (List.length !improvements)
    in
    Fmt.pr
      "@.SWCC mean execution-time improvement: %.0f%%  (paper: 22%% on \
       average; RADIOSITY 26%%, util 38%%->70%%)@."
      mean;
    Fmt.pr
      "flush-instruction overhead per app is the flush%% column (paper: \
       0.66%%, 0.00%%, 0.01%%)@."
end

(* ------------------------------------------------------------------ *)

module Fig9 = struct
  (* FIFO throughput: cycles per transferred element, per back-end and
     reader count.  The DSM column is the paper's Section VI-B story:
     pointer polling stays in local memories. *)
  let throughput kind ~readers ~items =
    let m = Machine.create { Config.default with cores = 8 } in
    let api = Pmc.Backends.create kind m in
    let fifo =
      Pmc.Fifo.create api ~name:"f" ~depth:8 ~elem_words:4 ~readers
    in
    Machine.spawn m ~core:0 (fun () ->
        for i = 1 to items do
          Pmc.Fifo.push fifo
            (Array.init 4 (fun w -> Int32.of_int ((i * 4) + w)))
        done);
    for r = 0 to readers - 1 do
      Machine.spawn m ~core:(1 + r) (fun () ->
          for _ = 1 to items do
            ignore (Pmc.Fifo.pop fifo ~reader:r)
          done)
    done;
    Machine.run m;
    Engine.wall_time (Machine.engine m) / items

  let run () =
    section "Fig. 9 — MR/MW FIFO: cycles per element (depth 8, 16 B)";
    Fmt.pr "%-9s" "readers";
    List.iter
      (fun k -> Fmt.pr " %8s" (Pmc.Backends.to_string k))
      Pmc.Backends.all;
    Fmt.pr "@.";
    List.iter
      (fun readers ->
        Fmt.pr "%-9d" readers;
        List.iter
          (fun k -> Fmt.pr " %8d" (throughput k ~readers ~items:64))
          Pmc.Backends.all;
        Fmt.pr "@.")
      [ 1; 2; 4 ];
    Fmt.pr
      "paper: the FIFO behaves correctly on all architectures; on DSM the \
       pointers are polled only from local memory.@."
end

(* ------------------------------------------------------------------ *)

module Fig10 = struct
  (* Motion estimation on a MicroBlaze-like tile (narrow 8-byte cache
     lines): the search window is read hundreds of times per block, so
     staging it in the scratch-pad beats refetching through the cache. *)
  let cfg =
    { Config.default with dcache_sets = 64; dcache_ways = 2; line_bytes = 8 }

  let run () =
    section "Fig. 10 — motion estimation (full search), 32 cores";
    let results =
      List.map
        (fun backend ->
          let r =
            Pmc_apps.Runner.run ~cfg Pmc_apps.Motion_est.app ~backend
              ~scale:8
          in
          assert (Pmc_apps.Runner.ok r);
          (backend, r.Pmc_apps.Runner.wall))
        [ Pmc.Backends.Nocc; Pmc.Backends.Swcc; Pmc.Backends.Spm ]
    in
    let spm = List.assoc Pmc.Backends.Spm results in
    List.iter
      (fun (b, wall) ->
        Fmt.pr "%-8s %10d cycles   (%.2fx vs SPM)@."
          (Pmc.Backends.to_string b)
          wall
          (float_of_int wall /. float_of_int spm))
      results;
    Fmt.pr
      "paper: \"a significant performance increase when this application \
       is using SPMs, compared to the software cache coherency setup\".@."
end

(* ------------------------------------------------------------------ *)

module Scaling = struct
  (* The motivation of Section VI-A: hardware cache coherency "limits
     scalability to many cores"; software cache coherency must therefore
     scale.  Strong-scaling sweep: fixed total work, growing core count,
     speedup relative to one core, per setup. *)
  let run () =
    section "Scaling — weak scaling efficiency, SWCC vs no-CC (volrend)";
    (* fixed work per core: ideal wall time is flat; the efficiency
       column shows how much the shared SDRAM port erodes it *)
    let pixels_per_core = 256 in
    Fmt.pr "%-8s %12s %12s %10s %10s@." "cores" "noCC(cyc)" "SWCC(cyc)"
      "noCC eff" "SWCC eff";
    let base = Hashtbl.create 4 in
    List.iter
      (fun cores ->
        let cfg = { Config.default with cores } in
        let run backend =
          (Pmc_apps.Runner.run ~cfg Pmc_apps.Volrend_like.app ~backend
             ~scale:pixels_per_core)
            .Pmc_apps.Runner.wall
        in
        let nocc = run Pmc.Backends.Nocc and swcc = run Pmc.Backends.Swcc in
        if cores = 1 then begin
          Hashtbl.replace base `N nocc;
          Hashtbl.replace base `S swcc
        end;
        let eff b w = float_of_int (Hashtbl.find base b) /. float_of_int w in
        Fmt.pr "%-8d %12d %12d %9.0f%% %9.0f%%@." cores nocc swcc
          (100.0 *. eff `N nocc)
          (100.0 *. eff `S swcc))
      [ 1; 2; 4; 8; 16; 32; 64; 128 ];
    Fmt.pr
      "paper motivation (Sec. VI-A): uncached shared data stops scaling as \
       the shared memory saturates; software cache coherency keeps shared \
       data cacheable and keeps scaling.@."
end

(* ------------------------------------------------------------------ *)

module Ablations = struct
  (* (a) cache-geometry sweep for motion estimation: where the SPM pays
     off and where a big wide-line cache catches up. *)
  let me_sweep () =
    Fmt.pr "@.-- motion estimation vs cache geometry (SWCC vs SPM) --@.";
    Fmt.pr "%-26s %10s %10s %8s@." "tile geometry" "SWCC" "SPM" "SPM wins";
    List.iter
      (fun (label, sets, ways, line, lm) ->
        let cfg =
          {
            Config.default with
            dcache_sets = sets;
            dcache_ways = ways;
            line_bytes = line;
            local_mem_cycles = lm;
          }
        in
        let run backend =
          (Pmc_apps.Runner.run ~cfg Pmc_apps.Motion_est.app ~backend
             ~scale:4)
            .Pmc_apps.Runner.wall
        in
        let swcc = run Pmc.Backends.Swcc and spm = run Pmc.Backends.Spm in
        Fmt.pr "%-26s %10d %10d %8s@." label swcc spm
          (if spm < swcc then "yes" else "no"))
      [
        ("1 KiB, 8 B lines", 64, 2, 8, 1);
        ("4 KiB, 8 B lines", 256, 2, 8, 1);
        ("4 KiB, 32 B lines", 64, 2, 32, 1);
        ("16 KiB, 32 B lines", 128, 4, 32, 1);
        ("16 KiB, 32 B, 2-cyc SPM", 128, 4, 32, 2);
      ];
    Fmt.pr
      "(\"it depends on many architectural parameters\" — Sec. VI-C: a \
       wide-line cache plus slow scratch-pad flips the verdict)@."

  (* (b) distributed lock vs centralized spinlock under contention. *)
  let locks () =
    Fmt.pr "@.-- distributed lock [15] vs uncached spinlock --@.";
    Fmt.pr "%-8s %12s %12s@." "cores" "dlock(cyc)" "spinlock(cyc)";
    List.iter
      (fun cores ->
        let cfg = { Config.default with cores } in
        let bench acquire_release =
          let m = Machine.create cfg in
          let acquire, release = acquire_release m in
          for c = 0 to cores - 1 do
            Machine.spawn m ~core:c (fun () ->
                for _ = 1 to 20 do
                  acquire ();
                  Engine.consume (Machine.engine m) Stats.Busy 30;
                  release ()
                done)
          done;
          Machine.run m;
          Engine.wall_time (Machine.engine m)
        in
        let dlock =
          bench (fun m ->
              let l = Pmc_lock.Dlock.create m in
              ( (fun () -> Pmc_lock.Dlock.acquire l),
                fun () -> Pmc_lock.Dlock.release l ))
        in
        let spin =
          bench (fun m ->
              let l = Pmc_lock.Spinlock.create m in
              ( (fun () -> Pmc_lock.Spinlock.acquire l),
                fun () -> Pmc_lock.Spinlock.release l ))
        in
        Fmt.pr "%-8d %12d %12d@." cores dlock spin)
      [ 2; 8; 32 ]

  (* (c) the entry_ro atomic-size rule: word-sized pointer polls without
     locking vs locking every read-only entry. *)
  let ro_rule () =
    Fmt.pr "@.-- entry_ro atomic fast path (FIFO on SWCC, 1 reader) --@.";
    let fifo_wall () =
      let m = Machine.create { Config.default with cores = 4 } in
      let api = Pmc.Backends.create Pmc.Backends.Swcc m in
      let fifo =
        Pmc.Fifo.create api ~name:"f" ~depth:4 ~elem_words:2 ~readers:1
      in
      Machine.spawn m ~core:0 (fun () ->
          for i = 1 to 48 do
            Pmc.Fifo.push fifo [| Int32.of_int i; Int32.of_int i |]
          done);
      Machine.spawn m ~core:1 (fun () ->
          for _ = 1 to 48 do
            ignore (Pmc.Fifo.pop fifo ~reader:0)
          done);
      Machine.run m;
      Engine.wall_time (Machine.engine m)
    in
    Pmc.Shared.set_atomic_threshold 4;
    let fast = fifo_wall () in
    Pmc.Shared.set_atomic_threshold 0;
    let locked = fifo_wall () in
    Pmc.Shared.set_atomic_threshold 4;
    Fmt.pr "word-atomic polls: %d cycles;  lock-every-entry_ro: %d cycles \
            (%.2fx slower)@."
      fast locked
      (float_of_int locked /. float_of_int fast)

  (* (d) lazy vs eager release on DSM: ping-pong an object between two
     cores; the eager variant broadcasts on every exit. *)
  let lazy_eager () =
    Fmt.pr "@.-- lazy vs eager release (DSM ping-pong, 2 cores) --@.";
    let bench ~eager =
      let m = Machine.create { Config.default with cores = 8 } in
      let api = Pmc.Backends.create Pmc.Backends.Dsm m in
      let o = Pmc.Api.alloc_words api ~name:"o" ~words:16 in
      let rounds = 40 in
      for c = 0 to 1 do
        Machine.spawn m ~core:c (fun () ->
            for i = 0 to rounds - 1 do
              (* wait for my turn *)
              ignore
                (Pmc.Api.poll_until api o 0 (fun v ->
                     Int32.to_int v mod 2 = c && Int32.to_int v >= i * 2));
              Pmc.Api.with_x api o (fun () ->
                  let v = Pmc.Api.get_int api o 0 in
                  Pmc.Api.set_int api o 0 (v + 1);
                  if eager then Pmc.Api.flush api o)
            done)
      done;
      Machine.run m;
      Engine.wall_time (Machine.engine m)
    in
    let l = bench ~eager:false and e = bench ~eager:true in
    Fmt.pr "lazy release: %d cycles;  eager (flush-on-exit): %d cycles@." l e;
    Fmt.pr
      "(lazy keeps modifications local until the next acquire — Table II's \
       DSM exit_x; eager pays a broadcast per exit but lets pollers \
       progress without the lock)@."

  let run () =
    section "Ablations";
    me_sweep ();
    locks ();
    ro_rule ();
    lazy_eager ()
end

(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel

  let test_transition =
    Test.make ~name:"model: 64-op execution build"
      (Staged.stage (fun () ->
           let e = Pmc_model.Execution.create ~procs:4 ~locs:4 () in
           for i = 0 to 63 do
             ignore
               (Pmc_model.Execution.write e ~proc:(i mod 4) ~loc:(i mod 4)
                  ~value:i)
           done))

  let test_litmus =
    Test.make ~name:"litmus: MP under PMC"
      (Staged.stage (fun () ->
           ignore
             (Pmc_model.Litmus.enumerate
                (module Pmc_model.Models.Pmc)
                Pmc_model.Lprog.mp_plain)))

  let test_sim =
    Test.make ~name:"sim: 10k instructions"
      (Staged.stage (fun () ->
           let m = Machine.create { Config.small with cores = 1 } in
           Machine.spawn m ~core:0 (fun () -> Machine.instr m 10_000);
           Machine.run m))

  let run () =
    section "Micro-benchmarks (Bechamel)";
    let benchmark test =
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg =
        Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
      in
      let raw = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Fmt.pr "%-34s %12.0f ns/run@." name est
          | _ -> Fmt.pr "%-34s (no estimate)@." name)
        results
    in
    benchmark
      (Test.make_grouped ~name:"pmc"
         [ test_transition; test_litmus; test_sim ])
end

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)

(* --json: the app × back-end matrix as machine-readable records, one
   JSON object per run with cycles, utilization and the per-category
   stall breakdown — for scripted regression tracking instead of the
   human-oriented tables above. *)
module Json_out = struct
  let result_json (r : Pmc_apps.Runner.result) =
    let s = r.Pmc_apps.Runner.summary in
    let stalls =
      String.concat ","
        (List.map
           (fun c ->
             Printf.sprintf "%S:%d" (Stats.category_name c)
               (Stats.category_cycles s c))
           Stats.categories)
    in
    Printf.sprintf
      "{\"app\":%S,\"backend\":%S,\"cores\":%d,\"scale\":%d,\"cycles\":%d,\
       \"utilization\":%.4f,\"instructions\":%d,\"ok\":%b,\"stalls\":{%s}}"
      r.Pmc_apps.Runner.app
      (Pmc.Backends.to_string r.Pmc_apps.Runner.backend)
      r.Pmc_apps.Runner.cores r.Pmc_apps.Runner.scale r.Pmc_apps.Runner.wall
      (Stats.utilization s) s.Stats.instructions
      (Pmc_apps.Runner.ok r) stalls

  let run ~cores ~scale () =
    let cfg = { Config.default with cores } in
    let first = ref true in
    print_string "[";
    List.iter
      (fun app ->
        List.iter
          (fun backend ->
            let record =
              match Pmc_apps.Runner.run ~cfg app ~backend ~scale with
              | r -> result_json r
              | exception exn ->
                  (* e.g. a back-end capacity limit at this geometry; keep
                     the stream valid and the rest of the matrix running *)
                  Printf.sprintf
                    "{\"app\":%S,\"backend\":%S,\"cores\":%d,\"scale\":%d,\
                     \"error\":%S}"
                    app.Pmc_apps.Runner.name
                    (Pmc.Backends.to_string backend)
                    cores scale (Printexc.to_string exn)
            in
            if not !first then print_string ",";
            first := false;
            print_string ("\n  " ^ record))
          Pmc.Backends.all)
      Pmc_apps.Registry.all;
    print_string "\n]\n"
end

let all_sections =
  [
    ("fig1", Fig1.run);
    ("models", Models_cmp.run);
    ("table2", Table2.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("scaling", Scaling.run);
    ("ablate", Ablations.run);
    ("micro", Micro.run);
  ]

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: l -> l in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  if json then Json_out.run ~cores:16 ~scale:32 ()
  else begin
    let requested = match args with [] -> None | l -> Some l in
    List.iter
      (fun (name, run) ->
        match requested with
        | Some l when not (List.mem name l) -> ()
        | _ -> run ())
      all_sections;
    Fmt.pr "@.done.@."
  end
